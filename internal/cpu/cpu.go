// Package cpu implements the out-of-order core model of the paper's
// Table I system: 4GHz, 4-wide, 128-entry ROB, trace-driven, in the
// style of Ramulator's SimpleO3 core. Non-memory instructions retire at
// core width; memory instructions occupy a ROB entry until the memory
// hierarchy answers, and the core stalls when the ROB fills — which is
// how DRAM bandwidth loss (the currency of every Perf-Attack in the
// paper) becomes IPC loss.
package cpu

import (
	"dapper/internal/dram"
	"dapper/internal/mem"
	"dapper/internal/telemetry"
)

// Record is one trace step: Bubbles non-memory instructions followed by
// one 64B memory access. NonCacheable accesses bypass the LLC (attack
// traces use this to guarantee DRAM activations, modeling
// flush+hammer patterns).
type Record struct {
	Bubbles      int
	Addr         uint64
	IsWrite      bool
	NonCacheable bool
}

// Trace is an infinite instruction stream; implementations are
// generative (seeded PRNG) so they need no storage.
type Trace interface {
	Next() Record
}

// Memory is the path from a core into the memory hierarchy (the system
// wires an LLC and the memory controllers behind this interface).
//
// Access returns:
//   - ok=false: the hierarchy cannot accept the request (backpressure);
//     the core must retry next cycle.
//   - pending=nil: the access completed synchronously (e.g. LLC hit)
//     with the given latency.
//   - pending!=nil: in flight; the access is complete when pending.Done
//     and pending.DoneAt <= now.
type Memory interface {
	Access(now dram.Cycle, core int, req *mem.Request) (latency dram.Cycle, pending *mem.Request, ok bool)
}

// Width is the issue/retire width of the core.
const Width = 4

// ROBSize is the reorder-buffer capacity (Table I: 128 entries).
const ROBSize = 128

type robEntry struct {
	completeAt dram.Cycle
	pending    *mem.Request
}

// Core is one out-of-order core. Not safe for concurrent use.
type Core struct {
	id    int
	trace Trace
	memIf Memory

	rob   [ROBSize]robEntry
	head  int // oldest entry
	count int

	// Trace cursor: bubbles still to dispatch before the next memory
	// access.
	bubbles   int
	memRecord Record
	haveMem   bool

	// Pending memory access that could not be issued (backpressure).
	stalledReq *mem.Request

	pool []*mem.Request

	retired   uint64
	cycles    uint64
	memReads  uint64
	memWrites uint64
	// Zero-dispatch cycles, split by cause: stallROB counts ROB-full /
	// head-of-ROB waits, stallBP cycles spent retrying a memory access
	// the hierarchy refused. The discriminator is stalledReq: a core
	// holding a refused request has already drained its bubbles, so
	// every zero-dispatch cycle while stalledReq != nil is a
	// backpressure retry, and every other one is an ROB wait.
	stallROB uint64
	stallBP  uint64

	// lastDispatched records how many instructions the most recent Step
	// dispatched, for NextEvent's progress test; lastStep is the cycle of
	// that Step, so a gap-driven Step can replay the skipped cycles.
	lastDispatched int
	lastStep       dram.Cycle

	// pendingCount tracks live ROB entries holding in-flight memory
	// requests; maxCompleteAt is an upper bound on live entries'
	// completion times. Together they gate catchUp's O(1) fast path:
	// when pendingCount is zero and maxCompleteAt has passed, every live
	// entry is ready and entries are interchangeable.
	pendingCount  int
	maxCompleteAt dram.Cycle

	// probe, when attached, receives the core's exact retirement
	// trajectory as uniform segments; nil costs one branch per Step.
	probe telemetry.CoreProbe
}

// New builds a core reading from trace and accessing memory through m.
func New(id int, trace Trace, m Memory) *Core {
	return &Core{id: id, trace: trace, memIf: m, lastStep: -1}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Retired returns instructions retired so far.
func (c *Core) Retired() uint64 { return c.retired }

// Cycles returns cycles stepped so far.
func (c *Core) Cycles() uint64 { return c.cycles }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.cycles)
}

// MemReads and MemWrites return issued access counts.
func (c *Core) MemReads() uint64  { return c.memReads }
func (c *Core) MemWrites() uint64 { return c.memWrites }

// StallCycles returns cycles in which nothing dispatched (ROB full or
// memory backpressure).
func (c *Core) StallCycles() uint64 { return c.stallROB + c.stallBP }

// StallBreakdown splits StallCycles into its causes: rob cycles the
// core waited on ROB retirement (full ROB or an unready head), bp
// cycles it retried a memory access the hierarchy refused. The two
// always sum exactly to StallCycles.
func (c *Core) StallBreakdown() (rob, bp uint64) { return c.stallROB, c.stallBP }

// SetProbe attaches a telemetry probe (nil detaches). The probe sees
// every stepped cycle exactly once, as uniform segments: the per-cycle
// Step path emits single-cycle segments, and catchUp's O(1) folds emit
// one multi-cycle segment per fold with the same per-cycle semantics —
// so the folded series is byte-identical whichever engine drives the
// core. Attach before the first Step.
func (c *Core) SetProbe(p telemetry.CoreProbe) { c.probe = p }

// Stalled reports whether the core is holding a memory access the
// hierarchy refused (backpressure). A stalled core retries every cycle,
// so the event engine must step it at every iteration — the retry's
// success depends on memory-system state the core cannot predict.
func (c *Core) Stalled() bool { return c.stalledReq != nil }

// ResetStats zeroes the performance counters (used after warmup).
func (c *Core) ResetStats() {
	c.retired, c.cycles, c.memReads, c.memWrites = 0, 0, 0, 0
	c.stallROB, c.stallBP = 0, 0
}

func (c *Core) getReq() *mem.Request {
	if n := len(c.pool); n > 0 {
		r := c.pool[n-1]
		c.pool = c.pool[:n-1]
		*r = mem.Request{}
		return r
	}
	return &mem.Request{}
}

func (c *Core) putReq(r *mem.Request) {
	if len(c.pool) < 256 {
		c.pool = append(c.pool, r)
	}
}

// Step advances the core to cycle now: retire up to Width completed
// instructions, then dispatch up to Width new ones. Step may be driven
// every cycle, or with gaps when the event engine skipped cycles it
// proved interaction-free (see NextEvent); skipped cycles are replayed
// exactly by catchUp first.
func (c *Core) Step(now dram.Cycle) {
	if now > c.lastStep+1 {
		c.catchUp(c.lastStep+1, now)
	}
	c.lastStep = now
	c.cycles++
	retiredBefore := c.retired

	// Retire.
	for n := 0; n < Width && c.count > 0; n++ {
		e := &c.rob[c.head]
		if e.pending != nil {
			if !e.pending.Done || e.pending.DoneAt > now {
				break
			}
			c.putReq(e.pending)
			e.pending = nil
			c.pendingCount--
		} else if e.completeAt > now {
			break
		}
		c.head = (c.head + 1) % ROBSize
		c.count--
		c.retired++
	}

	// Dispatch.
	dispatched := 0
	for dispatched < Width && c.count < ROBSize {
		if c.bubbles > 0 {
			c.rob[(c.head+c.count)%ROBSize] = robEntry{completeAt: now}
			c.count++
			c.bubbles--
			dispatched++
			continue
		}
		if !c.haveMem && c.stalledReq == nil {
			rec := c.trace.Next()
			c.bubbles = rec.Bubbles
			c.memRecord = rec
			c.haveMem = true
			if c.bubbles > 0 {
				continue
			}
		}
		// Issue the memory access (possibly one stalled from earlier).
		req := c.stalledReq
		if req == nil {
			req = c.getReq()
			req.Addr = c.memRecord.Addr
			if c.memRecord.NonCacheable {
				req.Addr = MarkNC(req.Addr)
			}
			req.IsWrite = c.memRecord.IsWrite
			req.Core = c.id
			c.haveMem = false
		}
		lat, pending, ok := c.memIf.Access(now, c.id, req)
		if !ok {
			c.stalledReq = req
			break
		}
		c.stalledReq = nil
		if req.IsWrite {
			c.memWrites++
			// Posted write: retires immediately; the request object is
			// owned by the memory system until done, so don't pool it.
			c.rob[(c.head+c.count)%ROBSize] = robEntry{completeAt: now}
			if pending == nil {
				c.putReq(req)
			}
		} else {
			c.memReads++
			if pending != nil {
				c.rob[(c.head+c.count)%ROBSize] = robEntry{pending: pending}
				c.pendingCount++
			} else {
				c.rob[(c.head+c.count)%ROBSize] = robEntry{completeAt: now + lat}
				if now+lat > c.maxCompleteAt {
					c.maxCompleteAt = now + lat
				}
				c.putReq(req)
			}
		}
		c.count++
		dispatched++
	}
	bp := c.stalledReq != nil
	if dispatched == 0 {
		if bp {
			c.stallBP++
		} else {
			c.stallROB++
		}
	}
	c.lastDispatched = dispatched
	if c.probe != nil {
		disp := dram.Cycle(0)
		if dispatched > 0 {
			disp = 1
		}
		c.probe.CoreSegment(now, now+1, c.retired-retiredBefore, disp, bp)
	}
}

// catchUp replays the cycles [from, to) the event engine skipped:
// in-order retirement plus bubble-only dispatch. The engine never skips
// past NextEvent's horizon, so no memory access can fall in this range —
// a bubble run leaves at least Width bubbles pending on every replayed
// cycle, which means the dispatch loop can never reach the trace's
// memory record early.
func (c *Core) catchUp(from, to dram.Cycle) {
	for cyc := from; cyc < to; cyc++ {
		// Steady bubble stream: every live entry is ready (no in-flight
		// requests, all completion times passed) and at least Width
		// bubbles remain per cycle, so each cycle retires Width entries
		// and dispatches Width interchangeable ready bubbles — net zero.
		// Fold the whole stretch in O(1).
		if c.pendingCount == 0 && c.maxCompleteAt <= cyc &&
			c.count >= Width && c.bubbles >= Width {
			n := to - cyc
			if m := dram.Cycle(c.bubbles / Width); m < n {
				n = m
			}
			c.retired += uint64(n) * Width
			c.bubbles -= int(n) * Width
			c.cycles += uint64(n)
			if c.probe != nil {
				c.probe.CoreSegment(cyc, cyc+n, uint64(n)*Width, n, false)
			}
			cyc += n - 1
			continue
		}
		// Retire-active phase: a leading run of ready entries retires at
		// full width while bubbles dispatch at full width — fold as many
		// such cycles as the run supports, shifting the ROB window
		// without touching the retired entries' slots.
		if c.count >= Width && c.bubbles >= Width {
			n := to - cyc
			if m := dram.Cycle(c.bubbles / Width); m < n {
				n = m
			}
			limit := int(n) * Width
			if limit > c.count {
				limit = c.count
			}
			run := 0
			for run < limit {
				e := &c.rob[(c.head+run)%ROBSize]
				if e.pending != nil || e.completeAt > cyc+dram.Cycle(run/Width) {
					break
				}
				run++
			}
			if m := dram.Cycle(run / Width); m > 0 {
				disp := int(m) * Width
				for k := 0; k < disp; k++ {
					c.rob[(c.head+c.count+k)%ROBSize] = robEntry{completeAt: cyc}
				}
				c.head = (c.head + disp) % ROBSize
				c.retired += uint64(disp)
				c.bubbles -= disp
				c.cycles += uint64(m)
				if c.probe != nil {
					c.probe.CoreSegment(cyc, cyc+m, uint64(disp), m, false)
				}
				cyc += m - 1
				continue
			}
		}
		// Head-stalled phase: an unready head entry blocks all
		// retirement until its completion time, so the replayed cycles
		// only dispatch bubbles (min(Width, room, bubbles) per cycle,
		// greedily) — fold the stretch in closed form.
		if c.count > 0 {
			headReadyAt := c.rob[c.head].completeAt
			if p := c.rob[c.head].pending; p != nil {
				headReadyAt = dram.Never // not serviced during the replayed range
				if p.Done {
					headReadyAt = p.DoneAt
				}
			}
			if headReadyAt > cyc {
				n := to - cyc
				if headReadyAt < to {
					n = headReadyAt - cyc
				}
				disp := int(n) * Width
				if room := ROBSize - c.count; room < disp {
					disp = room
				}
				if c.bubbles < disp {
					disp = c.bubbles
				}
				for k := 0; k < disp; k++ {
					// Recording the fold's first cycle as completeAt is
					// safe: the entry sits behind the unready head, so it
					// cannot retire before its true dispatch cycle anyway.
					c.rob[(c.head+c.count+k)%ROBSize] = robEntry{completeAt: cyc}
				}
				c.count += disp
				c.bubbles -= disp
				// A frozen stalledReq means the bubbles drained before the
				// refused issue (disp is then 0), so the whole stretch is
				// backpressure retry; otherwise it waits on the ROB head.
				stalls := uint64(n) - uint64((disp+Width-1)/Width)
				bp := c.stalledReq != nil
				if bp {
					c.stallBP += stalls
				} else {
					c.stallROB += stalls
				}
				c.cycles += uint64(n)
				if c.probe != nil {
					// Greedy dispatch fills full-width cycles first, so the
					// dispatching prefix is ceil(disp/Width) cycles long.
					c.probe.CoreSegment(cyc, cyc+n, 0, dram.Cycle((disp+Width-1)/Width), bp)
				}
				cyc += n - 1
				continue
			}
		}
		c.cycles++
		retiredBefore := c.retired
		for n := 0; n < Width && c.count > 0; n++ {
			e := &c.rob[c.head]
			if e.pending != nil {
				if !e.pending.Done || e.pending.DoneAt > cyc {
					break
				}
				c.putReq(e.pending)
				e.pending = nil
				c.pendingCount--
			} else if e.completeAt > cyc {
				break
			}
			c.head = (c.head + 1) % ROBSize
			c.count--
			c.retired++
		}
		dispatched := 0
		for dispatched < Width && c.count < ROBSize && c.bubbles > 0 {
			c.rob[(c.head+c.count)%ROBSize] = robEntry{completeAt: cyc}
			c.count++
			c.bubbles--
			dispatched++
		}
		bp := c.stalledReq != nil
		if dispatched == 0 {
			if bp {
				c.stallBP++
			} else {
				c.stallROB++
			}
		}
		if c.probe != nil {
			disp := dram.Cycle(0)
			if dispatched > 0 {
				disp = 1
			}
			c.probe.CoreSegment(cyc, cyc+1, c.retired-retiredBefore, disp, bp)
		}
	}
}

// NextEvent returns the earliest future cycle at which the core can
// interact with the rest of the system: the end of the current bubble
// run (the soonest a memory access could issue at full dispatch width),
// now+1 while it is otherwise dispatching, the ROB head's completion
// time when the ROB is full, or dram.Never when progress depends
// entirely on the memory system (backpressure, or an in-flight head
// request whose completion time is not yet known — the memory
// controller's own events cover those cases). Valid immediately after
// Step(now); if the engine skips ahead, the next Step replays the
// skipped cycles via catchUp.
func (c *Core) NextEvent(now dram.Cycle) dram.Cycle {
	if c.lastDispatched > 0 {
		if c.bubbles > 0 && c.stalledReq == nil {
			// First cycle at which the trace's pending memory record
			// could dispatch: all bubbles drained at Width per cycle,
			// with issue width left over. ROB stalls only push this
			// later, so it is a safe horizon.
			return now + (dram.Cycle(c.bubbles)+dram.Cycle(Width))/dram.Cycle(Width)
		}
		return now + 1
	}
	if c.count > 0 {
		e := &c.rob[c.head]
		switch {
		case e.pending == nil:
			if e.completeAt <= now {
				return now + 1 // ready, retirement just capped by Width
			}
			return e.completeAt
		case e.pending.Done:
			if e.pending.DoneAt <= now {
				return now + 1
			}
			return e.pending.DoneAt
		}
	}
	return dram.Never
}

// NCAddr marks addresses as non-cacheable via their top bit. Traces set
// it through Record.NonCacheable; the hierarchy strips it before
// address decomposition. Using an address bit keeps mem.Request free of
// model-only flags.
const NCAddr uint64 = 1 << 63

// MarkNC returns addr tagged non-cacheable.
func MarkNC(addr uint64) uint64 { return addr | NCAddr }

// IsNC reports whether addr carries the non-cacheable tag.
func IsNC(addr uint64) bool { return addr&NCAddr != 0 }

// StripNC removes the tag.
func StripNC(addr uint64) uint64 { return addr &^ NCAddr }
