// Package cpu implements the out-of-order core model of the paper's
// Table I system: 4GHz, 4-wide, 128-entry ROB, trace-driven, in the
// style of Ramulator's SimpleO3 core. Non-memory instructions retire at
// core width; memory instructions occupy a ROB entry until the memory
// hierarchy answers, and the core stalls when the ROB fills — which is
// how DRAM bandwidth loss (the currency of every Perf-Attack in the
// paper) becomes IPC loss.
package cpu

import (
	"dapper/internal/dram"
	"dapper/internal/mem"
)

// Record is one trace step: Bubbles non-memory instructions followed by
// one 64B memory access. NonCacheable accesses bypass the LLC (attack
// traces use this to guarantee DRAM activations, modeling
// flush+hammer patterns).
type Record struct {
	Bubbles      int
	Addr         uint64
	IsWrite      bool
	NonCacheable bool
}

// Trace is an infinite instruction stream; implementations are
// generative (seeded PRNG) so they need no storage.
type Trace interface {
	Next() Record
}

// Memory is the path from a core into the memory hierarchy (the system
// wires an LLC and the memory controllers behind this interface).
//
// Access returns:
//   - ok=false: the hierarchy cannot accept the request (backpressure);
//     the core must retry next cycle.
//   - pending=nil: the access completed synchronously (e.g. LLC hit)
//     with the given latency.
//   - pending!=nil: in flight; the access is complete when pending.Done
//     and pending.DoneAt <= now.
type Memory interface {
	Access(now dram.Cycle, core int, req *mem.Request) (latency dram.Cycle, pending *mem.Request, ok bool)
}

// Width is the issue/retire width of the core.
const Width = 4

// ROBSize is the reorder-buffer capacity (Table I: 128 entries).
const ROBSize = 128

type robEntry struct {
	completeAt dram.Cycle
	pending    *mem.Request
}

// Core is one out-of-order core. Not safe for concurrent use.
type Core struct {
	id    int
	trace Trace
	memIf Memory

	rob   [ROBSize]robEntry
	head  int // oldest entry
	count int

	// Trace cursor: bubbles still to dispatch before the next memory
	// access.
	bubbles   int
	memRecord Record
	haveMem   bool

	// Pending memory access that could not be issued (backpressure).
	stalledReq *mem.Request

	pool []*mem.Request

	retired   uint64
	cycles    uint64
	memReads  uint64
	memWrites uint64
	stallCyc  uint64
}

// New builds a core reading from trace and accessing memory through m.
func New(id int, trace Trace, m Memory) *Core {
	return &Core{id: id, trace: trace, memIf: m}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Retired returns instructions retired so far.
func (c *Core) Retired() uint64 { return c.retired }

// Cycles returns cycles stepped so far.
func (c *Core) Cycles() uint64 { return c.cycles }

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.cycles)
}

// MemReads and MemWrites return issued access counts.
func (c *Core) MemReads() uint64  { return c.memReads }
func (c *Core) MemWrites() uint64 { return c.memWrites }

// StallCycles returns cycles in which nothing dispatched (ROB full or
// memory backpressure).
func (c *Core) StallCycles() uint64 { return c.stallCyc }

// ResetStats zeroes the performance counters (used after warmup).
func (c *Core) ResetStats() {
	c.retired, c.cycles, c.memReads, c.memWrites, c.stallCyc = 0, 0, 0, 0, 0
}

func (c *Core) getReq() *mem.Request {
	if n := len(c.pool); n > 0 {
		r := c.pool[n-1]
		c.pool = c.pool[:n-1]
		*r = mem.Request{}
		return r
	}
	return &mem.Request{}
}

func (c *Core) putReq(r *mem.Request) {
	if len(c.pool) < 256 {
		c.pool = append(c.pool, r)
	}
}

// Step advances the core one cycle: retire up to Width completed
// instructions, then dispatch up to Width new ones.
func (c *Core) Step(now dram.Cycle) {
	c.cycles++

	// Retire.
	for n := 0; n < Width && c.count > 0; n++ {
		e := &c.rob[c.head]
		if e.pending != nil {
			if !e.pending.Done || e.pending.DoneAt > now {
				break
			}
			c.putReq(e.pending)
			e.pending = nil
		} else if e.completeAt > now {
			break
		}
		c.head = (c.head + 1) % ROBSize
		c.count--
		c.retired++
	}

	// Dispatch.
	dispatched := 0
	for dispatched < Width && c.count < ROBSize {
		if c.bubbles > 0 {
			c.rob[(c.head+c.count)%ROBSize] = robEntry{completeAt: now}
			c.count++
			c.bubbles--
			dispatched++
			continue
		}
		if !c.haveMem && c.stalledReq == nil {
			rec := c.trace.Next()
			c.bubbles = rec.Bubbles
			c.memRecord = rec
			c.haveMem = true
			if c.bubbles > 0 {
				continue
			}
		}
		// Issue the memory access (possibly one stalled from earlier).
		req := c.stalledReq
		if req == nil {
			req = c.getReq()
			req.Addr = c.memRecord.Addr
			if c.memRecord.NonCacheable {
				req.Addr = MarkNC(req.Addr)
			}
			req.IsWrite = c.memRecord.IsWrite
			req.Core = c.id
			c.haveMem = false
		}
		lat, pending, ok := c.memIf.Access(now, c.id, req)
		if !ok {
			c.stalledReq = req
			break
		}
		c.stalledReq = nil
		if req.IsWrite {
			c.memWrites++
			// Posted write: retires immediately; the request object is
			// owned by the memory system until done, so don't pool it.
			c.rob[(c.head+c.count)%ROBSize] = robEntry{completeAt: now}
			if pending == nil {
				c.putReq(req)
			}
		} else {
			c.memReads++
			if pending != nil {
				c.rob[(c.head+c.count)%ROBSize] = robEntry{pending: pending}
			} else {
				c.rob[(c.head+c.count)%ROBSize] = robEntry{completeAt: now + lat}
				c.putReq(req)
			}
		}
		c.count++
		dispatched++
	}
	if dispatched == 0 {
		c.stallCyc++
	}
}

// NCAddr marks addresses as non-cacheable via their top bit. Traces set
// it through Record.NonCacheable; the hierarchy strips it before
// address decomposition. Using an address bit keeps mem.Request free of
// model-only flags.
const NCAddr uint64 = 1 << 63

// MarkNC returns addr tagged non-cacheable.
func MarkNC(addr uint64) uint64 { return addr | NCAddr }

// IsNC reports whether addr carries the non-cacheable tag.
func IsNC(addr uint64) bool { return addr&NCAddr != 0 }

// StripNC removes the tag.
func StripNC(addr uint64) uint64 { return addr &^ NCAddr }
