package cpu

import (
	"testing"

	"dapper/internal/dram"
)

// splitProbe mirrors the telemetry recorder's stall-split accounting:
// every CoreSegment contributes (to-from) - dispCycles stall cycles to
// the bucket its bp flag selects.
type splitProbe struct {
	rob, bp, retired uint64
}

func (p *splitProbe) CoreSegment(from, to dram.Cycle, retired uint64, dispCycles dram.Cycle, bp bool) {
	stalls := uint64(to-from) - uint64(dispCycles)
	if bp {
		p.bp += stalls
	} else {
		p.rob += stalls
	}
	p.retired += retired
}

// TestStallSplitGapReplayMatchesDense is the fold-boundary regression
// for the ROB-full vs backpressure-retry split: a core driven only at
// its NextEvent wake times (forcing catchUp's closed-form folds,
// including head-stalled stretches inside a backpressure window) must
// report exactly the same StallBreakdown — and emit exactly the same
// probe totals — as the same core stepped every cycle. The memory
// model's busy window [5000,5060) freezes a stalledReq across a fold
// boundary, the case where a single misclassified fold would silently
// swap backpressure cycles into the ROB bucket.
func TestStallSplitGapReplayMatchesDense(t *testing.T) {
	recs := []Record{
		{Bubbles: 23, Addr: 0},
		{Bubbles: 2, Addr: 64},
		{Bubbles: 120, Addr: 128},
		{Bubbles: 0, Addr: 192},
		{Bubbles: 7, Addr: 320},
	}
	end := dram.Cycle(30000)

	type snap struct {
		rob, bp, cycles, retired uint64
		probe                    splitProbe
	}
	run := func(sparse bool) snap {
		memIf := &latencyMemory{hitLat: 40, missLat: 150, busyFrom: 5000, busyTo: 5060}
		c := New(0, &evScriptTrace{recs: append([]Record(nil), recs...)}, memIf)
		var p splitProbe
		c.SetProbe(&p)
		wake := dram.Cycle(0)
		for now := dram.Cycle(0); now < end; now++ {
			if sparse && now < wake && !c.Stalled() && now != end-1 {
				continue
			}
			c.Step(now)
			wake = c.NextEvent(now)
			if wake == dram.Never {
				wake = now + 1
			}
		}
		rob, bp := c.StallBreakdown()
		return snap{rob: rob, bp: bp, cycles: c.Cycles(), retired: c.Retired(), probe: p}
	}

	dense := run(false)
	sparse := run(true)
	if dense != sparse {
		t.Fatalf("stall split diverges across fold boundaries:\n dense  %+v\n sparse %+v", dense, sparse)
	}
	if dense.bp == 0 {
		t.Fatalf("scenario exercised no backpressure stalls — busy window lost its teeth")
	}
	if dense.rob == 0 {
		t.Fatalf("scenario exercised no ROB-full stalls")
	}
	for _, s := range []snap{dense, sparse} {
		if s.probe.rob != s.rob || s.probe.bp != s.bp {
			t.Fatalf("probe split (rob=%d bp=%d) != counter split (rob=%d bp=%d)",
				s.probe.rob, s.probe.bp, s.rob, s.bp)
		}
		if s.probe.retired != s.retired {
			t.Fatalf("probe retired %d != counter %d", s.probe.retired, s.retired)
		}
	}
}

// TestStallBreakdownSumsToStallCycles pins the split's partition
// identity on a run mixing compute, ROB-full waits and backpressure.
func TestStallBreakdownSumsToStallCycles(t *testing.T) {
	memIf := &latencyMemory{hitLat: 40, missLat: 150, busyFrom: 300, busyTo: 420}
	c := New(0, &evScriptTrace{recs: []Record{{Bubbles: 3, Addr: 64}, {Bubbles: 0, Addr: 192}}}, memIf)
	for now := dram.Cycle(0); now < 2000; now++ {
		c.Step(now)
	}
	rob, bp := c.StallBreakdown()
	if rob+bp != c.StallCycles() {
		t.Fatalf("rob %d + bp %d != StallCycles %d", rob, bp, c.StallCycles())
	}
	if bp == 0 {
		t.Fatalf("busy window produced no backpressure stalls")
	}
}
