// Package energy implements a DRAMPower-style event-energy model for
// DDR5: fixed energy per command event plus background power over the
// window. The paper uses DRAMPower for Table IV; relative overheads
// (mitigation energy vs. an insecure baseline) are what the table
// reports, and this model computes them from the simulator's command
// counters.
package energy

import (
	"dapper/internal/dram"
	"dapper/internal/rh"
)

// Model holds per-event energies in nanojoules and background power in
// watts. Defaults approximate a dual-rank DDR5-6400 DIMM (x8 devices);
// absolute values matter less than their ratios, which follow the
// command timings.
type Model struct {
	ActPreNJ   float64 // one ACT+PRE pair
	ReadNJ     float64 // one 64B read burst
	WriteNJ    float64 // one 64B write burst
	RefNJ      float64 // one all-bank refresh (per rank)
	RowRefNJ   float64 // refreshing one victim row (within VRR/RFM/bulk)
	Background float64 // watts per channel (idle + standby)
}

// DDR5 returns the default model.
func DDR5() Model {
	return Model{
		ActPreNJ:   2.5,
		ReadNJ:     1.5,
		WriteNJ:    1.6,
		RefNJ:      60,
		RowRefNJ:   2.5, // a row refresh is an ACT+PRE internally
		Background: 0.9,
	}
}

// Joules converts a run's command counters into total energy for the
// measured window. mode determines how many rows each victim-refresh
// command touches (blast radius; Same-Bank commands touch the sampled
// bank's victims across all bank groups).
func (m Model) Joules(c dram.Counters, cycles dram.Cycle, channels int, mode rh.MitigationMode) float64 {
	nj := 0.0
	nj += float64(c.ACT) * m.ActPreNJ
	nj += float64(c.RD) * m.ReadNJ
	nj += float64(c.WR) * m.WriteNJ
	// Tracker-injected counter traffic is real DRAM bursts; since the
	// accounting split it is disjoint from the demand RD/WR counters, so
	// total energy must price it here as well (its ACTs are still in
	// Counters.ACT above).
	nj += float64(c.InjRD) * m.ReadNJ
	nj += float64(c.InjWR) * m.WriteNJ
	nj += float64(c.REF) * m.RefNJ

	rowsPerVRR := float64(2 * mode.BlastRadius()) // victims on both sides
	nj += float64(c.VRR) * rowsPerVRR * m.RowRefNJ
	// Same-bank commands refresh the victims in the same bank index of
	// all 8 bank groups.
	nj += float64(c.RFMsb) * 8 * 2 * m.RowRefNJ
	nj += float64(c.DRFMsb) * 8 * 4 * m.RowRefNJ
	nj += float64(c.BulkRows) * m.RowRefNJ

	seconds := float64(cycles) / (4e9 / 1) // 4GHz clock
	return nj*1e-9 + m.Background*float64(channels)*seconds
}

// MitigationJoules returns the energy spent on mitigation operations in
// a run: victim refreshes, Same-Bank RFM/DRFM sweeps, bulk structure
// resets, and tracker counter traffic to DRAM. Table IV's overhead
// "primarily arises from mitigation operations" (§VI-H); this is that
// numerator.
func (m Model) MitigationJoules(c dram.Counters, mode rh.MitigationMode) float64 {
	nj := 0.0
	rowsPerVRR := float64(2 * mode.BlastRadius())
	nj += float64(c.VRR) * rowsPerVRR * m.RowRefNJ
	nj += float64(c.RFMsb) * 8 * 2 * m.RowRefNJ
	nj += float64(c.DRFMsb) * 8 * 4 * m.RowRefNJ
	nj += float64(c.BulkRows) * m.RowRefNJ
	nj += float64(c.InjRD) * m.ReadNJ
	nj += float64(c.InjWR) * m.WriteNJ
	return nj * 1e-9
}

// Overhead returns the Table IV metric: mitigation-operation energy of
// the treatment run relative to the insecure baseline's total energy.
// (A plain total-energy delta can go negative because mitigative
// blocking also throttles the attacker's own traffic; the paper
// attributes overhead to mitigation operations, which this isolates.)
func (m Model) Overhead(treat, base dram.Counters, cycles dram.Cycle, channels int, mode rh.MitigationMode) float64 {
	eb := m.Joules(base, cycles, channels, mode)
	if eb == 0 {
		return 0
	}
	return m.MitigationJoules(treat, mode) / eb
}
