package energy

import (
	"testing"

	"dapper/internal/dram"
	"dapper/internal/rh"
)

func TestBackgroundOnly(t *testing.T) {
	m := DDR5()
	// 4e9 cycles = 1 second, 2 channels: background only.
	j := m.Joules(dram.Counters{}, 4_000_000_000, 2, rh.VRR1)
	want := m.Background * 2
	if j < want*0.99 || j > want*1.01 {
		t.Fatalf("background energy = %v, want %v", j, want)
	}
}

func TestCommandEnergiesAdd(t *testing.T) {
	m := DDR5()
	base := m.Joules(dram.Counters{}, 1000, 2, rh.VRR1)
	withActs := m.Joules(dram.Counters{ACT: 1000}, 1000, 2, rh.VRR1)
	deltaNJ := (withActs - base) * 1e9
	if deltaNJ < 2499 || deltaNJ > 2501 {
		t.Fatalf("1000 ACTs added %.1fnJ, want 2500", deltaNJ)
	}
}

func TestBlastRadiusDoublesVRREnergy(t *testing.T) {
	m := DDR5()
	c := dram.Counters{VRR: 100}
	e1 := m.Joules(c, 0, 2, rh.VRR1)
	e2 := m.Joules(c, 0, 2, rh.VRR2)
	if e2 <= e1 {
		t.Fatal("BR2 must cost more")
	}
	if e2/e1 < 1.9 || e2/e1 > 2.1 {
		t.Fatalf("BR2/BR1 = %.2f, want ~2", e2/e1)
	}
}

func TestDRFMCostsMoreThanRFM(t *testing.T) {
	m := DDR5()
	rfm := m.Joules(dram.Counters{RFMsb: 10}, 0, 2, rh.VRR1)
	drfm := m.Joules(dram.Counters{DRFMsb: 10}, 0, 2, rh.VRR1)
	if drfm <= rfm {
		t.Fatal("DRFMsb (BR2, 8 banks) must cost more than RFMsb")
	}
}

func TestBulkRowsDominate(t *testing.T) {
	m := DDR5()
	// A CoMeT-style reset sweeps 2M rows: hugely more than benign VRRs.
	bulk := m.Joules(dram.Counters{BulkRows: 2 << 20}, 0, 2, rh.VRR1)
	vrr := m.Joules(dram.Counters{VRR: 1000}, 0, 2, rh.VRR1)
	if bulk < 100*vrr {
		t.Fatalf("bulk sweep %.4fJ should dwarf VRRs %.4fJ", bulk, vrr)
	}
}

func TestOverheadZeroWithoutMitigations(t *testing.T) {
	m := DDR5()
	c := dram.Counters{ACT: 100, RD: 100}
	if got := m.Overhead(c, c, 1000, 2, rh.VRR1); got != 0 {
		t.Fatalf("overhead = %v", got)
	}
}

func TestMitigationJoulesCountsCounterTraffic(t *testing.T) {
	m := DDR5()
	c := dram.Counters{InjRD: 1000, InjWR: 500}
	j := m.MitigationJoules(c, rh.VRR1)
	wantNJ := 1000*m.ReadNJ + 500*m.WriteNJ
	if gotNJ := j * 1e9; gotNJ < wantNJ*0.99 || gotNJ > wantNJ*1.01 {
		t.Fatalf("mitigation energy = %.1fnJ, want %.1fnJ", gotNJ, wantNJ)
	}
}

// TestJoulesCountsInjectedTraffic: since the demand/injected accounting
// split, InjRD/InjWR are disjoint from RD/WR — total energy must price
// the injected bursts too, identically to demand bursts.
func TestJoulesCountsInjectedTraffic(t *testing.T) {
	m := DDR5()
	demand := m.Joules(dram.Counters{RD: 1000, WR: 500}, 0, 2, rh.VRR1)
	injected := m.Joules(dram.Counters{InjRD: 1000, InjWR: 500}, 0, 2, rh.VRR1)
	if demand == 0 || demand != injected {
		t.Fatalf("injected bursts priced %.3gJ, demand bursts %.3gJ; must match", injected, demand)
	}
}

func TestOverheadNeverNegative(t *testing.T) {
	m := DDR5()
	base := dram.Counters{ACT: 100000, RD: 100000}
	treat := dram.Counters{ACT: 10, RD: 10, VRR: 5} // throttled treatment
	if got := m.Overhead(treat, base, dram.MS(1), 2, rh.VRR1); got < 0 {
		t.Fatalf("overhead = %v, must be non-negative", got)
	}
}

func TestOverheadPositiveWithMitigations(t *testing.T) {
	m := DDR5()
	base := dram.Counters{ACT: 10000, RD: 10000, REF: 100}
	treat := base
	treat.VRR = 500
	got := m.Overhead(treat, base, dram.MS(1), 2, rh.VRR1)
	if got <= 0 {
		t.Fatalf("overhead = %v, want positive", got)
	}
	if got > 0.5 {
		t.Fatalf("overhead = %v, implausibly large for 500 VRRs", got)
	}
}

func TestOverheadHandlesZeroBaseline(t *testing.T) {
	m := Model{} // all-zero model
	if got := m.Overhead(dram.Counters{}, dram.Counters{}, 0, 0, rh.VRR1); got != 0 {
		t.Fatalf("overhead = %v", got)
	}
}
