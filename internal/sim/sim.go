// Package sim wires the full Table I system together: four out-of-order
// cores, a shared LLC, two memory-channel controllers, and one RowHammer
// tracker instance per channel. It runs warmup + measurement windows and
// reports per-core IPC plus DRAM/tracker statistics — the raw material
// for every figure in the paper.
package sim

import (
	"fmt"

	"dapper/internal/cache"
	"dapper/internal/cpu"
	"dapper/internal/dram"
	"dapper/internal/mem"
	"dapper/internal/rh"
	"dapper/internal/secaudit"
	"dapper/internal/telemetry"
)

// TrackerFactory builds one tracker per channel (trackers are
// per-channel structures in every design the paper evaluates).
type TrackerFactory func(channel int) rh.Tracker

// NopFactory is the insecure baseline.
func NopFactory(channel int) rh.Tracker { return rh.NewNop() }

// ObserverFactory builds one passive security-event observer per
// channel (internal/secaudit's shadow oracle is the main implementer).
// Returning nil for a channel leaves that channel unobserved.
type ObserverFactory func(channel int) rh.Observer

// Engine selects the simulation loop strategy. Both engines produce
// byte-identical Results (the equivalence test matrix enforces this);
// the event engine is simply faster because it skips provably dead
// cycles.
type Engine string

const (
	// EngineEvent advances time directly to the next wake point — the
	// earliest refresh deadline, tracker tick, scheduling attempt, ROB
	// wakeup or write-back completion — whenever every component is
	// quiescent. The default.
	EngineEvent Engine = "event"
	// EngineCycle ticks every component on every DRAM cycle: the
	// reference loop, kept as an escape hatch and as the oracle the
	// equivalence tests compare against.
	EngineCycle Engine = "cycle"
)

// OrDefault resolves the zero value to the default engine.
func (e Engine) OrDefault() Engine {
	if e == "" {
		return EngineEvent
	}
	return e
}

// ParseEngine parses a flag value ("event" or "cycle"; "" = default).
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "", EngineEvent:
		return EngineEvent, nil
	case EngineCycle:
		return EngineCycle, nil
	}
	return "", fmt.Errorf("sim: unknown engine %q (event|cycle)", s)
}

// Config describes one simulation run.
type Config struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	// LLCBytes/LLCWays size the shared cache (Table I: 8MB, 16-way).
	LLCBytes int
	LLCWays  int
	// LLCLatency is the hit latency.
	LLCLatency dram.Cycle
	// Tracker builds the per-channel tracker (NopFactory if nil).
	Tracker TrackerFactory
	Mode    rh.MitigationMode
	// Traces drive the cores (one each).
	Traces []cpu.Trace
	// Warmup runs before statistics reset; Measure is the measured
	// window.
	Warmup  dram.Cycle
	Measure dram.Cycle
	// Engine selects the loop strategy (EngineEvent if empty).
	Engine Engine
	// Observer, if non-nil, taps every controller's security-relevant
	// event stream (ACTs, mitigations, refreshes, bulk sweeps). Purely
	// passive: attaching an observer never changes the Result's other
	// fields, and the observed stream is identical under both engines.
	Observer ObserverFactory
	// TelemetryWindow, when positive, turns on the cycle-windowed
	// telemetry sampler: Result.Series carries per-window time-series
	// (IPC, stall fraction, ACT and mitigation rates, queue and tracker
	// table occupancy) folded at this window width. Zero (the default)
	// disables collection entirely — no probes attach, and the only cost
	// on any hot path is a nil check. The fold is exact under time-skip,
	// so the Series is byte-identical across engines and reruns.
	TelemetryWindow dram.Cycle
	// Attribution, when set, turns on the slowdown-attribution layer:
	// Result.Attribution carries per-core CPI stacks (dispatch vs
	// ROB-full vs backpressure), per-core memory-blame breakdowns, and
	// the N×N core→core interference blame matrix. When TelemetryWindow
	// is also set, windowed blame series and the stall split ride
	// Result.Series. Off (the default), no blame probes attach and the
	// only cost on any hot path is a nil check. The attribution is
	// exact arithmetic on event timestamps: byte-identical across
	// engines, and conservation-checked on every run (CPI buckets sum
	// to cycles; blame buckets sum to the controller's read wait).
	Attribution bool
}

// withDefaults fills zero fields with Table I values.
func (c Config) withDefaults() Config {
	if c.Geometry.Channels == 0 {
		c.Geometry = dram.Baseline()
	}
	if c.Timing == (dram.Timing{}) {
		c.Timing = dram.DDR5()
	}
	c.Engine = c.Engine.OrDefault()
	if c.LLCBytes == 0 {
		c.LLCBytes = 8 << 20
	}
	if c.LLCWays == 0 {
		c.LLCWays = 16
	}
	if c.LLCLatency == 0 {
		c.LLCLatency = dram.NS(10)
	}
	if c.Tracker == nil {
		c.Tracker = NopFactory
	}
	if c.Warmup == 0 {
		c.Warmup = dram.US(50)
	}
	if c.Measure == 0 {
		c.Measure = dram.US(300)
	}
	return c
}

// Result is the outcome of a run; all statistics cover the measurement
// window only.
type Result struct {
	IPC          []float64 // per core
	Instructions []uint64  // per core
	Cycles       dram.Cycle
	Counters     dram.Counters // summed over channels
	Tracker      rh.Stats      // summed over channels
	Mem          mem.Stats     // summed over channels
	LLCHitRate   float64
	TrackerNames []string
	// Audit carries the shadow security oracle's verdict when the run
	// was audited (exp attaches it after Run; nil otherwise). It rides
	// in the Result so harness caching and sinks see one record per run.
	Audit *secaudit.Report `json:"Audit,omitempty"`
	// Series carries the cycle-windowed telemetry when
	// Config.TelemetryWindow was set (nil otherwise). Unlike every other
	// field it covers the whole run including warmup — dynamics are the
	// point — with the warmup boundary recorded inside.
	Series *telemetry.Series `json:"Series,omitempty"`
	// Attribution carries the slowdown-attribution stacks when
	// Config.Attribution was set (nil otherwise). Like Series it covers
	// the whole run including warmup.
	Attribution *telemetry.Attribution `json:"Attribution,omitempty"`
}

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	return run(cfg, nil, nil)
}

// run is Run with two batched-runner hooks: wrapT, applied to each
// per-channel tracker right after construction (before the optional
// TimingTaxer/LLCReserver extensions are probed, so a wrapper's
// forwarded values are the ones the system sees), and extraObs, an
// additional per-channel observer teed into the security-event stream.
// Both nil reproduces Run exactly.
func run(cfg Config, wrapT func(channel int, t rh.Tracker) rh.Tracker, extraObs func(channel int) rh.Observer) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Geometry.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return Result{}, err
	}
	if _, err := ParseEngine(string(cfg.Engine)); err != nil {
		return Result{}, err
	}
	if len(cfg.Traces) == 0 {
		return Result{}, fmt.Errorf("sim: no traces")
	}
	end := cfg.Warmup + cfg.Measure

	var rec *telemetry.Recorder
	if cfg.TelemetryWindow > 0 {
		var err error
		rec, err = telemetry.NewRecorder(telemetry.RecorderConfig{
			Cores:       len(cfg.Traces),
			Channels:    cfg.Geometry.Channels,
			Window:      cfg.TelemetryWindow,
			End:         end,
			Warmup:      cfg.Warmup,
			SplitStalls: cfg.Attribution,
		})
		if err != nil {
			return Result{}, err
		}
	}
	var blameRec *telemetry.BlameRecorder
	if cfg.Attribution {
		var err error
		blameRec, err = telemetry.NewBlameRecorder(telemetry.BlameRecorderConfig{
			Cores:           len(cfg.Traces),
			Channels:        cfg.Geometry.Channels,
			BanksPerChannel: cfg.Geometry.BanksPerChannel(),
			Window:          cfg.TelemetryWindow,
			End:             end,
		})
		if err != nil {
			return Result{}, err
		}
	}

	trackers := make([]rh.Tracker, cfg.Geometry.Channels)
	for ch := range trackers {
		trackers[ch] = cfg.Tracker(ch)
		if wrapT != nil {
			trackers[ch] = wrapT(ch, trackers[ch])
		}
	}

	// Optional tracker extensions: PRAC's ACT tax and START's LLC
	// reservation.
	timing := cfg.Timing
	if taxer, ok := trackers[0].(rh.TimingTaxer); ok {
		timing.PRACActTax = taxer.ActTax()
	}
	llcBytes := cfg.LLCBytes
	if res, ok := trackers[0].(rh.LLCReserver); ok {
		llcBytes = int(float64(llcBytes) * (1 - res.LLCReservedFraction()))
	}

	controllers := make([]*mem.Controller, cfg.Geometry.Channels)
	for ch := range controllers {
		controllers[ch] = mem.NewController(ch, cfg.Geometry, timing, trackers[ch], cfg.Mode)
		var obs rh.Observer
		if cfg.Observer != nil {
			obs = cfg.Observer(ch)
		}
		if extraObs != nil {
			obs = rh.Tee(obs, extraObs(ch))
		}
		if rec != nil {
			obs = rh.Tee(obs, rec.Observer(ch))
			controllers[ch].SetProbe(rec.ControllerProbe(ch))
		}
		if blameRec != nil {
			controllers[ch].SetBlameProbe(blameRec.Probe(ch))
		}
		if obs != nil {
			controllers[ch].SetObserver(obs)
		}
	}

	llc, err := cache.NewBySize(llcBytes, cfg.LLCWays, cfg.Geometry.LineBytes)
	if err != nil {
		return Result{}, err
	}
	hier := &hierarchy{
		geo:    cfg.Geometry,
		llc:    llc,
		ctrls:  controllers,
		llcLat: cfg.LLCLatency,
	}

	cores := make([]*cpu.Core, len(cfg.Traces))
	for i, tr := range cfg.Traces {
		cores[i] = cpu.New(i, tr, hier)
		if rec != nil {
			cores[i].SetProbe(rec.CoreProbe(i))
		}
	}

	var base snapshots
	if cfg.Engine == EngineCycle {
		for now := dram.Cycle(0); now < end; now++ {
			for _, c := range controllers {
				c.Tick(now)
			}
			hier.flush(now)
			for _, c := range cores {
				c.Step(now)
			}
			if now == cfg.Warmup {
				base = snapshot(cores, controllers, trackers, llc)
			}
		}
	} else {
		base = runEvent(cfg, controllers, hier, cores, trackers, llc, end)
	}
	final := snapshot(cores, controllers, trackers, llc)

	res := Result{Cycles: cfg.Measure}
	for i := range cores {
		instr := final.retired[i] - base.retired[i]
		res.Instructions = append(res.Instructions, instr)
		res.IPC = append(res.IPC, float64(instr)/float64(cfg.Measure))
	}
	res.Counters = final.counters
	sub(&res.Counters, base.counters)
	res.Tracker = final.tracker
	subStats(&res.Tracker, base.tracker)
	res.Mem = final.mem
	subMem(&res.Mem, base.mem)
	if acc := final.llcAcc - base.llcAcc; acc > 0 {
		res.LLCHitRate = float64(final.llcHit-base.llcHit) / float64(acc)
	}
	for _, t := range trackers {
		res.TrackerNames = append(res.TrackerNames, t.Name())
	}
	var series *telemetry.Series
	if rec != nil {
		series = rec.Finish()
	}
	if blameRec != nil {
		attr := blameRec.Finish()
		for i, c := range cores {
			rob, bp := c.StallBreakdown()
			cyc := c.Cycles()
			attr.Cores[i].CPI = telemetry.CPIStack{
				Cycles:   cyc,
				Dispatch: cyc - rob - bp,
				StallROB: rob,
				StallBP:  bp,
			}
		}
		if err := attr.Validate(); err != nil {
			return Result{}, err
		}
		// Grand-total conservation against the controllers' own
		// accounting: every core's cycle count is the run length, and
		// the blame buckets across cores sum exactly to the cumulative
		// demand-read wait the controllers measured.
		var blameTotal uint64
		for i := range attr.Cores {
			if attr.Cores[i].CPI.Cycles != uint64(end) {
				return Result{}, fmt.Errorf("sim: attribution conservation violated: core %d counted %d cycles, run has %d",
					i, attr.Cores[i].CPI.Cycles, end)
			}
			blameTotal += attr.Cores[i].Mem.Total
		}
		if blameTotal != uint64(final.mem.TotalReadWait) {
			return Result{}, fmt.Errorf("sim: attribution conservation violated: blame total %d != read wait %d",
				blameTotal, final.mem.TotalReadWait)
		}
		if series != nil {
			series.Blame = blameRec.WindowSeries()
			if err := attr.CheckSeries(series); err != nil {
				return Result{}, err
			}
		}
		res.Attribution = attr
	}
	if series != nil {
		if err := series.Validate(); err != nil {
			return Result{}, err
		}
		if err := checkConservation(series, final, cores); err != nil {
			return Result{}, err
		}
		res.Series = series
	}
	return res, nil
}

// checkConservation cross-checks the telemetry fold's grand totals
// against the simulator's own end-of-run counters. Every DRAM counter
// increment corresponds to exactly one observed telemetry event
// regardless of timestamp, so the equalities are exact; any mismatch
// means the fold dropped or duplicated an event and fails the run.
func checkConservation(s *telemetry.Series, final snapshots, cores []*cpu.Core) error {
	type check struct {
		name      string
		got, want uint64
	}
	var retired, stalls uint64
	for _, c := range cores {
		retired += c.Retired()
		stalls += c.StallCycles()
	}
	t := s.Totals
	checks := []check{
		{"ACT", t.DemandACT + t.InjACT, final.counters.ACT},
		{"VRR", t.VRR, final.counters.VRR},
		{"RFMsb", t.RFMsb, final.counters.RFMsb},
		{"DRFMsb", t.DRFMsb, final.counters.DRFMsb},
		{"bulk", t.Bulk, final.counters.BulkEvents},
		{"REF", t.REF, final.counters.REF},
		{"retired", t.Retired, retired},
		{"stalls", t.Stalls, stalls},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("sim: telemetry conservation violated: %s series total %d != counter %d",
				c.name, c.got, c.want)
		}
	}
	return nil
}

// runEvent is the event-driven loop: each component is processed only
// when due, and time advances straight to the earliest wake across all
// components. Correctness rests on three contracts, each of which makes
// a component's behavior identical whether it is driven every cycle or
// only at its wake times:
//
//   - mem.Controller.Tick replays the skipped backoff trajectory
//     (catch-up) and NextEvent never reports a wake later than the
//     first cycle the controller could change state;
//   - cpu.Core.Step replays skipped interaction-free cycles exactly,
//     and NextEvent's bubble horizon is a lower bound on the next
//     memory access; a backpressure-stalled core is stepped at every
//     iteration since its retry outcome depends on memory-system state;
//   - all cross-component interactions (enqueue, service completion,
//     write-back admission) happen at iteration times by construction,
//     so skipped cycles are provably no-ops for every skipped component.
//
// The warmup and final cycles are never skipped: the statistics
// snapshots must observe the same retirement state as the cycle engine.
func runEvent(cfg Config, controllers []*mem.Controller, hier *hierarchy,
	cores []*cpu.Core, trackers []rh.Tracker, llc *cache.Cache, end dram.Cycle) snapshots {
	var base snapshots
	nCtrl, nCore := len(controllers), len(cores)
	ctrlWake := make([]dram.Cycle, nCtrl)
	ctrlVer := make([]uint64, nCtrl)
	ctrlTicked := make([]bool, nCtrl)
	coreWake := make([]dram.Cycle, nCore)

	for now := dram.Cycle(0); now < end; {
		for ch, c := range controllers {
			if now >= ctrlWake[ch] {
				c.Tick(now)
				ctrlTicked[ch] = true
			}
		}
		hier.flush(now)
		boundary := now == cfg.Warmup || now == end-1
		for i, c := range cores {
			switch {
			case now >= coreWake[i] || c.Stalled() || boundary:
				c.Step(now)
				coreWake[i] = c.NextEvent(now)
			case coreWake[i] == dram.Never:
				// Externally blocked on an in-flight ROB head: re-poll
				// (read-only) — the controller may just have given the
				// request its completion time.
				coreWake[i] = c.NextEvent(now)
			}
		}
		if now == cfg.Warmup {
			base = snapshot(cores, controllers, trackers, llc)
		}

		wake := dram.Never
		for ch, c := range controllers {
			if ctrlTicked[ch] || c.Version() != ctrlVer[ch] {
				ctrlWake[ch] = c.NextEvent(now)
				ctrlVer[ch] = c.Version()
				ctrlTicked[ch] = false
			}
			if ctrlWake[ch] < wake {
				wake = ctrlWake[ch]
			}
		}
		for i := range cores {
			if coreWake[i] < wake {
				wake = coreWake[i]
			}
		}
		if w := hier.nextEvent(now); w < wake {
			wake = w
		}
		if wake < now+1 {
			wake = now + 1
		}
		if now < cfg.Warmup && wake > cfg.Warmup {
			wake = cfg.Warmup
		}
		if wake > end-1 && now < end-1 {
			wake = end - 1
		}
		now = wake
	}
	return base
}

// MustRun is Run panicking on configuration errors.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

type snapshots struct {
	retired  []uint64
	counters dram.Counters
	tracker  rh.Stats
	mem      mem.Stats
	llcHit   uint64
	llcAcc   uint64
}

func snapshot(cores []*cpu.Core, ctrls []*mem.Controller, trackers []rh.Tracker, llc *cache.Cache) snapshots {
	s := snapshots{}
	for _, c := range cores {
		s.retired = append(s.retired, c.Retired())
	}
	for _, c := range ctrls {
		s.counters.Add(c.Counters())
		st := c.Stats()
		s.mem.ReadsServed += st.ReadsServed
		s.mem.WritesServed += st.WritesServed
		s.mem.RowHits += st.RowHits
		s.mem.RowMisses += st.RowMisses
		s.mem.TotalReadWait += st.TotalReadWait
		s.mem.Refreshes += st.Refreshes
	}
	for _, t := range trackers {
		ts := t.Stats()
		s.tracker.Activations += ts.Activations
		s.tracker.Mitigations += ts.Mitigations
		s.tracker.VictimRefreshes += ts.VictimRefreshes
		s.tracker.BulkResets += ts.BulkResets
		s.tracker.InjectedReads += ts.InjectedReads
		s.tracker.InjectedWrites += ts.InjectedWrites
		s.tracker.Throttled += ts.Throttled
	}
	s.llcHit = llc.Hits()
	s.llcAcc = llc.Hits() + llc.Misses()
	return s
}

func sub(a *dram.Counters, b dram.Counters) {
	a.ACT -= b.ACT
	a.RD -= b.RD
	a.WR -= b.WR
	a.REF -= b.REF
	a.VRR -= b.VRR
	a.RFMsb -= b.RFMsb
	a.DRFMsb -= b.DRFMsb
	a.BulkEvents -= b.BulkEvents
	a.BulkRows -= b.BulkRows
	a.InjRD -= b.InjRD
	a.InjWR -= b.InjWR
}

func subStats(a *rh.Stats, b rh.Stats) {
	a.Activations -= b.Activations
	a.Mitigations -= b.Mitigations
	a.VictimRefreshes -= b.VictimRefreshes
	a.BulkResets -= b.BulkResets
	a.InjectedReads -= b.InjectedReads
	a.InjectedWrites -= b.InjectedWrites
	a.Throttled -= b.Throttled
}

func subMem(a *mem.Stats, b mem.Stats) {
	a.ReadsServed -= b.ReadsServed
	a.WritesServed -= b.WritesServed
	a.RowHits -= b.RowHits
	a.RowMisses -= b.RowMisses
	a.TotalReadWait -= b.TotalReadWait
	a.Refreshes -= b.Refreshes
}

// hierarchy implements cpu.Memory: shared LLC in front of the channel
// controllers. Write-back, allocate-on-miss; evicted dirty lines become
// DRAM write-backs via a bounded backlog.
type hierarchy struct {
	geo     dram.Geometry
	llc     *cache.Cache
	ctrls   []*mem.Controller
	llcLat  dram.Cycle
	backlog []*mem.Request
	pool    []*mem.Request
}

const backlogCap = 64

func (h *hierarchy) getReq() *mem.Request {
	if n := len(h.pool); n > 0 {
		r := h.pool[n-1]
		h.pool = h.pool[:n-1]
		*r = mem.Request{}
		return r
	}
	return &mem.Request{}
}

// nextEvent returns the earliest future cycle at which the backlog
// changes on its own: the next in-flight write-back completion.
// Admission retries for not-yet-enqueued write-backs piggyback on
// controller events (a queue slot only frees when a controller services
// a request, which is a controller wake).
func (h *hierarchy) nextEvent(now dram.Cycle) dram.Cycle {
	next := dram.Never
	for _, r := range h.backlog {
		if r.Done && r.DoneAt > now && r.DoneAt < next {
			next = r.DoneAt
		}
	}
	return next
}

// flush retires completed write-backs and retries queued ones.
func (h *hierarchy) flush(now dram.Cycle) {
	kept := h.backlog[:0]
	for _, r := range h.backlog {
		if r.Done && r.DoneAt <= now {
			if len(h.pool) < 128 {
				h.pool = append(h.pool, r)
			}
			continue
		}
		if !r.Done && r.EnqueuedAt == -1 {
			// Not yet admitted: retry.
			ch := r.Loc.Channel
			if h.ctrls[ch].CanEnqueue() {
				h.ctrls[ch].Enqueue(r, now)
			}
		}
		kept = append(kept, r)
	}
	h.backlog = kept
}

// Access implements cpu.Memory.
func (h *hierarchy) Access(now dram.Cycle, core int, req *mem.Request) (dram.Cycle, *mem.Request, bool) {
	addr := req.Addr
	if cpu.IsNC(addr) {
		// Non-cacheable: straight to DRAM.
		req.Addr = cpu.StripNC(addr)
		req.Loc = h.geo.Decompose(req.Addr)
		if !h.ctrls[req.Loc.Channel].Enqueue(req, now) {
			req.Addr = addr // restore tag for the retry
			return 0, nil, false
		}
		return 0, req, true
	}

	if len(h.backlog) >= backlogCap {
		return 0, nil, false // write-back pressure: stall the core
	}

	line := addr / uint64(h.geo.LineBytes)
	// A miss needs a fill slot in the target channel's queue; check
	// before touching the LLC so backpressured misses don't allocate
	// lines they never fetched.
	if !h.llc.Contains(line) {
		loc := h.geo.Decompose(addr)
		if !h.ctrls[loc.Channel].CanEnqueue() {
			return 0, nil, false
		}
	}
	res := h.llc.Access(line, req.IsWrite)
	if res.Evicted && res.EvictedDirty {
		wb := h.getReq()
		wb.Addr = res.EvictedKey * uint64(h.geo.LineBytes)
		wb.Loc = h.geo.Decompose(wb.Addr)
		wb.IsWrite = true
		wb.Core = -1
		wb.EnqueuedAt = -1
		if !h.ctrls[wb.Loc.Channel].Enqueue(wb, now) {
			wb.EnqueuedAt = -1 // admission failed; flush() retries
		}
		h.backlog = append(h.backlog, wb)
	}
	if res.Hit {
		return h.llcLat, nil, true
	}
	// Miss: fetch the line from DRAM (writes allocate and complete when
	// the fill returns; the dirty data stays in the LLC).
	req.Loc = h.geo.Decompose(addr)
	wasWrite := req.IsWrite
	req.IsWrite = false // the DRAM side sees a fill read
	if !h.ctrls[req.Loc.Channel].Enqueue(req, now) {
		req.IsWrite = wasWrite
		return 0, nil, false
	}
	return 0, req, true
}
