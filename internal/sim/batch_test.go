package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"dapper/internal/attack"
	"dapper/internal/core"
	"dapper/internal/cpu"
	"dapper/internal/dram"
	"dapper/internal/rh"
	"dapper/internal/secaudit"
	"dapper/internal/trackers/abacus"
	"dapper/internal/trackers/blockhammer"
	"dapper/internal/trackers/hydra"
	"dapper/internal/trackers/prac"
	"dapper/internal/trackers/start"
)

// batchPoint names one cell of the batched equivalence matrix.
type namedBatchPoint struct {
	name  string
	point BatchPoint
}

// batchPoints builds the sweep: an insecure lead, a guaranteed-lockstep
// twin, three table trackers (lockstep under benign load, diverging
// under attack), and one point per fallback reason (LLC reservation,
// ACT tax, throttler, mode mismatch).
func batchPoints(g dram.Geometry) []namedBatchPoint {
	return []namedBatchPoint{
		{"nop-lead", BatchPoint{}},
		{"nop-twin", BatchPoint{}},
		{"hydra", BatchPoint{Tracker: func(ch int) rh.Tracker {
			return hydra.New(ch, hydra.Config{Geometry: g, NRH: 500})
		}}},
		// NRH 16 transitions row groups to per-row tracking within any
		// workload's first few microseconds; the injected counter fetches
		// disagree with the insecure lead's empty stream, so this point
		// always exercises the divergence fallback.
		{"hydra-low-diverges", BatchPoint{Tracker: func(ch int) rh.Tracker {
			return hydra.New(ch, hydra.Config{Geometry: g, NRH: 16})
		}}},
		{"dapper-h", BatchPoint{Tracker: func(ch int) rh.Tracker {
			d, err := core.NewDapperH(ch, core.Config{Geometry: g, NRH: 500})
			if err != nil {
				panic(err)
			}
			return d
		}}},
		{"abacus", BatchPoint{Tracker: func(ch int) rh.Tracker {
			return abacus.New(ch, abacus.Config{Geometry: g, NRH: 500})
		}}},
		{"start-llc", BatchPoint{Tracker: func(ch int) rh.Tracker {
			return start.New(ch, start.Config{Geometry: g, NRH: 500})
		}}},
		{"prac-tax", BatchPoint{Tracker: func(ch int) rh.Tracker {
			return prac.New(ch, prac.Config{Geometry: g, NRH: 500})
		}}},
		{"blockhammer-throttle", BatchPoint{Tracker: func(ch int) rh.Tracker {
			return blockhammer.New(ch, blockhammer.Config{Geometry: g, NRH: 500})
		}}},
		{"nop-vrr2", BatchPoint{Mode: rh.VRR2}},
	}
}

func batchBaseConfig(t *testing.T, g dram.Geometry, hammer bool) Config {
	t.Helper()
	var traces []cpu.Trace
	if hammer {
		traces = append(BenignTraces(mustWorkload(t, "ycsb_a"), 3, g, 3),
			attack.MustTrace(attack.Config{Geometry: g, NRH: 500, Kind: attack.Refresh}))
	} else {
		traces = BenignTraces(mustWorkload(t, "429.mcf"), 4, g, 3)
	}
	return Config{
		Geometry:        g,
		Traces:          traces,
		Warmup:          dram.US(20),
		Measure:         dram.US(60),
		TelemetryWindow: dram.US(10),
		Attribution:     true,
	}
}

// TestEngineEquivalenceBatched is the batched runner's safety net:
// every point's Result — lockstep or fallback — must be byte-identical
// (JSON) to an independent sim.Run of the same configuration, with
// telemetry and attribution on. The benign half exercises lockstep
// replay (trackers that stay quiet emit the lead's empty action
// stream); the hammer half forces the divergence fallback (mitigating
// trackers disagree with the insecure lead's stream).
func TestEngineEquivalenceBatched(t *testing.T) {
	g := dram.Baseline()
	for _, hammer := range []bool{false, true} {
		name := "benign"
		if hammer {
			name = "hammer"
		}
		t.Run(name, func(t *testing.T) {
			pts := batchPoints(g)
			points := make([]BatchPoint, len(pts))
			for i := range pts {
				points[i] = pts[i].point
			}
			results, outcomes, err := RunBatch(batchBaseConfig(t, g, hammer), points)
			if err != nil {
				t.Fatal(err)
			}

			lockstep := 0
			for i := range pts {
				t.Run(pts[i].name, func(t *testing.T) {
					cfg := batchBaseConfig(t, g, hammer)
					cfg.Tracker = pts[i].point.Tracker
					cfg.Mode = pts[i].point.Mode
					want := MustRun(cfg)
					wantJS, err := json.Marshal(want)
					if err != nil {
						t.Fatal(err)
					}
					gotJS, err := json.Marshal(results[i])
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(wantJS, gotJS) {
						t.Fatalf("batched result diverges from independent run (outcome %+v):\n want %s\n got  %s",
							outcomes[i], wantJS, gotJS)
					}
				})
				if outcomes[i].Lockstep {
					lockstep++
				}
			}

			// The fallback taxonomy must hold regardless of workload.
			wantReasons := map[string]FallbackReason{
				"nop-lead":             FallbackLead,
				"start-llc":            FallbackLLCReserve,
				"prac-tax":             FallbackActTax,
				"blockhammer-throttle": FallbackThrottler,
				"nop-vrr2":             FallbackMode,
			}
			for i := range pts {
				if want, ok := wantReasons[pts[i].name]; ok {
					if outcomes[i].Lockstep || outcomes[i].Reason != want {
						t.Errorf("%s: outcome %+v, want reason %q", pts[i].name, outcomes[i], want)
					}
				}
			}
			// The nop twin emits exactly the lead's (empty) stream: always
			// lockstep. And any point whose tracker acted differently from
			// the insecure lead must have been detected and rerun.
			for i := range pts {
				if pts[i].name == "nop-twin" && !outcomes[i].Lockstep {
					t.Errorf("nop-twin fell back: %+v", outcomes[i])
				}
				if outcomes[i].Lockstep &&
					(results[i].Tracker.Mitigations != 0 || results[i].Tracker.InjectedReads != 0) {
					t.Errorf("%s: lockstep point emitted actions the insecure lead could not have: %+v",
						pts[i].name, results[i].Tracker)
				}
			}
			for i := range pts {
				if pts[i].name == "hydra-low-diverges" && outcomes[i].Reason != FallbackDiverged {
					t.Errorf("hydra-low-diverges: outcome %+v, want divergence fallback", outcomes[i])
				}
			}
			if !hammer && lockstep < 2 {
				t.Errorf("benign scenario replayed only %d points in lockstep; want >= 2", lockstep)
			}
		})
	}
}

// TestEngineEquivalenceBatchedAudit extends the matrix to the observer
// stream: a security audit attached to a batched point must reach the
// same verdict as one attached to an independent run, for both a
// lockstep point (replayed observer events) and a diverging one (the
// fallback must not leak the partial lead stream into the audit).
func TestEngineEquivalenceBatchedAudit(t *testing.T) {
	g := dram.Baseline()
	// NRH 16 hydra injects counter traffic under any workload, so the
	// audited tracker point is guaranteed to diverge from the insecure
	// lead and take the fallback path.
	newTracker := func(ch int) rh.Tracker {
		return hydra.New(ch, hydra.Config{Geometry: g, NRH: 16})
	}
	newAudit := func() *secaudit.Audit {
		a, err := secaudit.New(secaudit.Config{Geometry: g, NRH: 500})
		if err != nil {
			panic(err)
		}
		return a
	}

	for _, hammer := range []bool{false, true} {
		name := "benign-lockstep"
		if hammer {
			name = "hammer-diverged"
		}
		t.Run(name, func(t *testing.T) {
			batchAudits := []*secaudit.Audit{newAudit(), newAudit()}
			points := []BatchPoint{
				{}, // insecure lead
				{Tracker: nil, Observer: batchAudits[0].Observer},
				{Tracker: newTracker, Observer: batchAudits[1].Observer},
			}
			_, outcomes, err := RunBatch(batchBaseConfig(t, g, hammer), points)
			if err != nil {
				t.Fatal(err)
			}
			if !outcomes[1].Lockstep {
				t.Fatalf("audited nop point fell back: %+v", outcomes[1])
			}
			if outcomes[2].Reason != FallbackDiverged {
				t.Fatalf("audited hydra point: outcome %+v, want divergence fallback", outcomes[2])
			}

			for i := 1; i <= 2; i++ {
				indep := newAudit()
				cfg := batchBaseConfig(t, g, hammer)
				cfg.Tracker = points[i].Tracker
				cfg.Observer = indep.Observer
				MustRun(cfg)
				wantJS, err := json.Marshal(indep.Report())
				if err != nil {
					t.Fatal(err)
				}
				gotJS, err := json.Marshal(batchAudits[i-1].Report())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantJS, gotJS) {
					t.Fatalf("point %d (outcome %+v): audit reports diverge:\n want %s\n got  %s",
						i, outcomes[i], wantJS, gotJS)
				}
			}
		})
	}
}

// TestEngineEquivalenceBatchedAllThrottlers pins the no-lead path:
// when every point throttles there is no shared stream, and each point
// must still come back as a byte-identical independent run.
func TestEngineEquivalenceBatchedAllThrottlers(t *testing.T) {
	g := dram.Baseline()
	mk := func(nrh uint32) TrackerFactory {
		return func(ch int) rh.Tracker {
			return blockhammer.New(ch, blockhammer.Config{Geometry: g, NRH: nrh})
		}
	}
	points := []BatchPoint{{Tracker: mk(500)}, {Tracker: mk(1000)}}
	results, outcomes, err := RunBatch(batchBaseConfig(t, g, true), points)
	if err != nil {
		t.Fatal(err)
	}
	for i, nrh := range []uint32{500, 1000} {
		if outcomes[i].Lockstep || outcomes[i].Reason != FallbackThrottler {
			t.Errorf("point %d: outcome %+v, want throttler fallback", i, outcomes[i])
		}
		cfg := batchBaseConfig(t, g, true)
		cfg.Tracker = mk(nrh)
		want := MustRun(cfg)
		wantJS, _ := json.Marshal(want)
		gotJS, _ := json.Marshal(results[i])
		if !bytes.Equal(wantJS, gotJS) {
			t.Errorf("point %d: batched result diverges from independent run", i)
		}
	}
}
