package sim

import (
	"testing"

	"dapper/internal/attack"
	"dapper/internal/core"
	"dapper/internal/cpu"
	"dapper/internal/dram"
	"dapper/internal/rh"
	"dapper/internal/trackers/prac"
	"dapper/internal/trackers/start"
	"dapper/internal/workloads"
)

// quickCfg returns a small, fast configuration.
func quickCfg(traces []cpu.Trace) Config {
	return Config{
		Traces:  traces,
		Warmup:  dram.US(10),
		Measure: dram.US(50),
	}
}

func mustWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunRequiresTraces(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("expected error with no traces")
	}
}

func TestComputeBoundWorkloadHighIPC(t *testing.T) {
	// Every memory record is a dependent blocking load, so even light
	// workloads pay some exposed latency; compute-bound still lands
	// well above memory-bound levels.
	w := mustWorkload(t, "511.povray") // 3 APKI, tiny hot set
	res := MustRun(quickCfg(BenignTraces(w, 4, dram.Baseline(), 1)))
	for i, ipc := range res.IPC {
		if ipc < 1.0 {
			t.Fatalf("core %d IPC = %.2f; compute-bound workload too slow", i, ipc)
		}
	}
}

func TestMemoryBoundWorkloadLowerIPC(t *testing.T) {
	light := MustRun(quickCfg(BenignTraces(mustWorkload(t, "511.povray"), 4, dram.Baseline(), 1)))
	heavy := MustRun(quickCfg(BenignTraces(mustWorkload(t, "429.mcf"), 4, dram.Baseline(), 1)))
	if heavy.IPC[0] >= light.IPC[0] {
		t.Fatalf("mcf IPC %.2f >= povray IPC %.2f", heavy.IPC[0], light.IPC[0])
	}
	if heavy.Counters.ACT == 0 || heavy.Counters.RD == 0 {
		t.Fatal("memory-bound run produced no DRAM traffic")
	}
}

func TestRefreshesHappen(t *testing.T) {
	res := MustRun(quickCfg(BenignTraces(mustWorkload(t, "403.gcc"), 4, dram.Baseline(), 1)))
	// 50us measure / 3.9us tREFI x 2 ranks x 2 channels ~ 50 REFs.
	if res.Counters.REF < 20 {
		t.Fatalf("REF count = %d over 50us", res.Counters.REF)
	}
}

func TestTrackerSeesActivations(t *testing.T) {
	g := dram.Baseline()
	g.RowsPerBank = 2048
	cfg := quickCfg(BenignTraces(mustWorkload(t, "429.mcf"), 4, g, 1))
	cfg.Geometry = g
	cfg.Tracker = func(ch int) rh.Tracker {
		d, _ := core.NewDapperH(ch, core.Config{Geometry: g, NRH: 500})
		return d
	}
	res := MustRun(cfg)
	if res.Tracker.Activations == 0 {
		t.Fatal("tracker saw no activations")
	}
	if res.TrackerNames[0] != "DAPPER-H" {
		t.Fatalf("tracker name = %s", res.TrackerNames[0])
	}
}

func TestCacheThrashSlowsBenign(t *testing.T) {
	// Needs a window long enough for the streaming attacker to churn
	// through the 8MB LLC.
	w := mustWorkload(t, "520.omnetpp")
	geo := dram.Baseline()
	cfg := func(traces []cpu.Trace) Config {
		c := quickCfg(traces)
		c.Warmup = dram.US(100)
		c.Measure = dram.US(400)
		return c
	}
	base := MustRun(cfg(append(BenignTraces(w, 3, geo, 1),
		attack.MustTrace(attack.Config{Geometry: geo, Kind: attack.None}))))
	thrash := MustRun(cfg(append(BenignTraces(w, 3, geo, 1),
		attack.MustTrace(attack.Config{Geometry: geo, Kind: attack.CacheThrash}))))
	np := NormalizedPerf(thrash, base, BenignCores(4))
	if np >= 0.97 {
		t.Fatalf("cache thrashing left normalized perf at %.3f", np)
	}
}

func TestNCTrafficBypassesLLC(t *testing.T) {
	geo := dram.Baseline()
	// Pure attacker run: every access should reach DRAM.
	cfg := quickCfg([]cpu.Trace{attack.MustTrace(attack.Config{Geometry: geo, Kind: attack.Refresh})})
	res := MustRun(cfg)
	if res.Counters.ACT == 0 {
		t.Fatal("NC attacker generated no activations")
	}
	if res.LLCHitRate > 0.01 && res.Counters.RD < 100 {
		t.Fatal("NC traffic appears to be hitting the LLC")
	}
}

func TestAttackerActivationRateIsHigh(t *testing.T) {
	// A lone refresh attacker should sustain close to the tRRD-limited
	// ACT rate (one per ~2.5-6ns per channel).
	geo := dram.Baseline()
	cfg := quickCfg([]cpu.Trace{attack.MustTrace(attack.Config{Geometry: geo, Kind: attack.Refresh})})
	res := MustRun(cfg)
	nsMeasured := float64(res.Cycles) / dram.CyclesPerNs
	rate := float64(res.Counters.ACT) / nsMeasured // ACTs per ns, both channels
	if rate < 0.1 {
		t.Fatalf("attacker ACT rate = %.3f/ns; expected > 0.1/ns", rate)
	}
}

func TestSTARTReservesLLC(t *testing.T) {
	g := dram.Baseline()
	w := mustWorkload(t, "473.astar")
	cfg := quickCfg(BenignTraces(w, 4, g, 1))
	cfg.Tracker = func(ch int) rh.Tracker {
		return start.New(ch, start.Config{Geometry: g, NRH: 500})
	}
	withStart := MustRun(cfg)
	without := MustRun(quickCfg(BenignTraces(w, 4, g, 1)))
	if withStart.LLCHitRate >= without.LLCHitRate {
		t.Fatalf("halved LLC should lower hit rate: %.3f vs %.3f",
			withStart.LLCHitRate, without.LLCHitRate)
	}
}

func TestPRACTaxSlowsMemoryBoundWork(t *testing.T) {
	g := dram.Baseline()
	w := mustWorkload(t, "429.mcf")
	base := MustRun(quickCfg(BenignTraces(w, 4, g, 1)))
	cfg := quickCfg(BenignTraces(w, 4, g, 1))
	cfg.Tracker = func(ch int) rh.Tracker {
		return prac.New(ch, prac.Config{Geometry: g, NRH: 500})
	}
	withPrac := MustRun(cfg)
	np := NormalizedPerf(withPrac, base, []int{0, 1, 2, 3})
	if np >= 1.0 {
		t.Fatalf("PRAC tax had no effect (normalized %.3f)", np)
	}
	if np < 0.5 {
		t.Fatalf("PRAC tax implausibly large (normalized %.3f)", np)
	}
}

func TestNormalizedPerfHelper(t *testing.T) {
	treat := Result{IPC: []float64{1, 2, 3}}
	base := Result{IPC: []float64{2, 2, 6}}
	got := NormalizedPerf(treat, base, []int{0, 1, 2})
	want := (0.5 + 1.0 + 0.5) / 3
	if got != want {
		t.Fatalf("normalized = %v, want %v", got, want)
	}
	if NormalizedPerf(treat, base, nil) != 0 {
		t.Fatal("empty cores should give 0")
	}
}

// TestNormalizedPerfSkipsZeroBaselineCores is the denominator
// regression: a core with zero baseline IPC used to be skipped in the
// sum but still counted in the denominator, silently deflating the
// mean. It must be skipped in both.
func TestNormalizedPerfSkipsZeroBaselineCores(t *testing.T) {
	treat := Result{IPC: []float64{1, 2, 0.5}}
	base := Result{IPC: []float64{2, 0, 1}}
	got := NormalizedPerf(treat, base, []int{0, 1, 2})
	want := (0.5 + 0.5) / 2 // core 1 contributes to neither sum nor count
	if got != want {
		t.Fatalf("normalized = %v, want %v (zero-baseline core deflated the mean)", got, want)
	}
	if NormalizedPerf(treat, Result{IPC: []float64{0, 0, 0}}, []int{0, 1, 2}) != 0 {
		t.Fatal("all-zero baseline should give 0, not NaN")
	}
}

func TestBenignCores(t *testing.T) {
	c := BenignCores(4)
	if len(c) != 3 || c[0] != 0 || c[2] != 2 {
		t.Fatalf("benign cores = %v", c)
	}
}

func TestBenignTracesDisjointRegions(t *testing.T) {
	g := dram.Baseline()
	w := mustWorkload(t, "429.mcf")
	traces := BenignTraces(w, 4, g, 1)
	slice := g.TotalBytes() / 4
	for i, tr := range traces {
		for k := 0; k < 200; k++ {
			rec := tr.Next()
			if rec.Addr < uint64(i)*slice || rec.Addr >= uint64(i+1)*slice {
				t.Fatalf("core %d address %x outside its region", i, rec.Addr)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := dram.Baseline()
	w := mustWorkload(t, "ycsb_a")
	a := MustRun(quickCfg(BenignTraces(w, 4, g, 7)))
	b := MustRun(quickCfg(BenignTraces(w, 4, g, 7)))
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("non-deterministic IPC on core %d", i)
		}
	}
}
