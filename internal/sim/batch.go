// Batched multi-config execution: decode and replay a workload's
// instruction stream once, advance many tracker configurations in
// lockstep against it, and fall back to full independent runs for the
// points whose behavior would have perturbed the shared stream.
//
// The batching rests on the tracker contract's narrow influence
// surface. A tracker can change system evolution only through (a) the
// actions it returns from OnActivate/Tick, (b) rh.Throttler's
// NextAllowed, (c) rh.TimingTaxer's ActTax, and (d) rh.LLCReserver's
// LLCReservedFraction. For two configurations with equal (c) and (d),
// neither throttling, the whole system trajectory is a function of the
// action stream alone: if a follower configuration emits exactly the
// actions the lead emitted at every tracker invocation, every
// controller, core, cache and telemetry state transition is identical
// by induction, and its Result equals the lead's except for the
// tracker-owned fields (Stats, Name, table-occupancy telemetry).
//
// RunBatch exploits this: the lead point runs at full fidelity with a
// recording shim capturing every tracker input (and, when needed, the
// security-event observer stream); each eligible follower then replays
// the recorded inputs into its own tracker instance, comparing emitted
// actions element-wise. The first mismatch is a divergence: the
// follower's feedback would have changed the stream, so it reruns
// independently (over the already-decoded trace buffers — decode still
// happens once). Throttlers always run independently: NextAllowed is
// consulted on the scheduling hot path, where "would this point have
// delayed the request" cannot be answered from the lead's stream.
package sim

import (
	"fmt"
	"slices"

	"dapper/internal/cpu"
	"dapper/internal/dram"
	"dapper/internal/rh"
)

// BatchPoint is one sweep point in a RunBatch call: a tracker
// configuration plus its mitigation mode and optional per-channel
// observer. The base Config's Tracker/Mode/Observer are ignored.
type BatchPoint struct {
	Tracker  TrackerFactory
	Mode     rh.MitigationMode
	Observer ObserverFactory
}

// FallbackReason says why a point did not ride the lead's stream.
type FallbackReason string

const (
	// FallbackNone: the point replayed in lockstep.
	FallbackNone FallbackReason = ""
	// FallbackLead: the point was the lead, running the stream itself.
	FallbackLead FallbackReason = "lead"
	// FallbackThrottler: the tracker throttles (rh.Throttler), so its
	// scheduling influence cannot be checked against a recorded stream.
	FallbackThrottler FallbackReason = "throttler"
	// FallbackMode: the point's mitigation mode differs from the lead's
	// (mode changes mitigation timings, hence the stream).
	FallbackMode FallbackReason = "mode-mismatch"
	// FallbackActTax: the point's PRAC ACT tax differs from the lead's.
	FallbackActTax FallbackReason = "act-tax-mismatch"
	// FallbackLLCReserve: the point reserves a different LLC fraction.
	FallbackLLCReserve FallbackReason = "llc-reserve-mismatch"
	// FallbackDiverged: replay found an action mismatch; the point was
	// rerun independently.
	FallbackDiverged FallbackReason = "diverged"
)

// BatchOutcome reports how one point's Result was produced. Lockstep
// results are byte-identical to an independent Run of the same
// configuration (the equivalence tests enforce this); fallback results
// ARE independent runs.
type BatchOutcome struct {
	Lockstep   bool
	Reason     FallbackReason
	DivergedAt dram.Cycle // first mismatching tracker invocation (diverged only)
}

// traceBuffer caches one trace's decoded records so every run in the
// batch (lead and fallbacks alike) replays the exact same stream
// without re-decoding.
type traceBuffer struct {
	src  cpu.Trace
	recs []cpu.Record
}

func (b *traceBuffer) get(i int) cpu.Record {
	for len(b.recs) <= i {
		b.recs = append(b.recs, b.src.Next())
	}
	return b.recs[i]
}

// traceCursor is one run's read position over a shared traceBuffer.
type traceCursor struct {
	b *traceBuffer
	i int
}

func (c *traceCursor) Next() cpu.Record {
	r := c.b.get(c.i)
	c.i++
	return r
}

// Recorded tracker-input events. evStats marks a Stats() call — the
// engine snapshots tracker stats exactly twice (warmup boundary and
// run end), so replay recovers the follower's measured-window delta by
// reading its own Stats() at the same two points in the stream.
const (
	evAct uint8 = iota
	evTick
	evStats
)

type recEvent struct {
	kind uint8
	now  dram.Cycle
	loc  dram.Loc
	nAct int32 // actions emitted, stored flat in chanRecord.acts
}

// Recorded observer events (only captured when an eligible follower
// has an Observer to replay them into).
const (
	oACT uint8 = iota
	oMit
	oRef
	oBulk
)

type obsEvent struct {
	kind     uint8
	now      dram.Cycle
	loc      dram.Loc
	row      uint32
	akind    rh.ActionKind
	rank     int
	injected bool
}

// chanRecord is one channel's recorded stream.
type chanRecord struct {
	events []recEvent
	acts   []rh.Action
	obs    []obsEvent
}

type batchRecorder struct {
	chans     []chanRecord
	recordObs bool
}

// recordingTracker wraps the lead's per-channel tracker. It forwards
// everything and records every input plus the emitted actions. It
// always implements TimingTaxer and LLCReserver (forwarding the
// inner's value or the 0 default — indistinguishable from absence) and
// never Throttler (the lead is chosen non-throttling). TableReporter
// is forwarded conditionally via recordingTableTracker: the controller
// type-asserts it, and an unconditional implementation would make
// non-table trackers emit spurious table samples.
type recordingTracker struct {
	inner rh.Tracker
	rec   *chanRecord
}

func (r *recordingTracker) Name() string { return r.inner.Name() }

func (r *recordingTracker) OnActivate(now dram.Cycle, loc dram.Loc, buf []rh.Action) []rh.Action {
	start := len(buf)
	out := r.inner.OnActivate(now, loc, buf)
	r.rec.events = append(r.rec.events, recEvent{kind: evAct, now: now, loc: loc, nAct: int32(len(out) - start)})
	r.rec.acts = append(r.rec.acts, out[start:]...)
	return out
}

func (r *recordingTracker) Tick(now dram.Cycle, buf []rh.Action) []rh.Action {
	start := len(buf)
	out := r.inner.Tick(now, buf)
	r.rec.events = append(r.rec.events, recEvent{kind: evTick, now: now, nAct: int32(len(out) - start)})
	r.rec.acts = append(r.rec.acts, out[start:]...)
	return out
}

func (r *recordingTracker) Stats() rh.Stats {
	r.rec.events = append(r.rec.events, recEvent{kind: evStats})
	return r.inner.Stats()
}

func (r *recordingTracker) ActTax() dram.Cycle {
	if t, ok := r.inner.(rh.TimingTaxer); ok {
		return t.ActTax()
	}
	return 0
}

func (r *recordingTracker) LLCReservedFraction() float64 {
	if t, ok := r.inner.(rh.LLCReserver); ok {
		return t.LLCReservedFraction()
	}
	return 0
}

type recordingTableTracker struct {
	recordingTracker
}

func (r *recordingTableTracker) TableOccupancy() rh.TableOccupancy {
	return r.inner.(rh.TableReporter).TableOccupancy()
}

func (r *batchRecorder) wrapTracker(ch int, t rh.Tracker) rh.Tracker {
	rt := recordingTracker{inner: t, rec: &r.chans[ch]}
	if _, ok := t.(rh.TableReporter); ok {
		return &recordingTableTracker{rt}
	}
	return &rt
}

type recordingObserver struct {
	rec *chanRecord
}

func (o *recordingObserver) ObserveACT(now dram.Cycle, loc dram.Loc, injected bool) {
	o.rec.obs = append(o.rec.obs, obsEvent{kind: oACT, now: now, loc: loc, injected: injected})
}

func (o *recordingObserver) ObserveMitigation(now dram.Cycle, kind rh.ActionKind, loc dram.Loc, row uint32) {
	o.rec.obs = append(o.rec.obs, obsEvent{kind: oMit, now: now, loc: loc, row: row, akind: kind})
}

func (o *recordingObserver) ObserveRefresh(now dram.Cycle, rank int) {
	o.rec.obs = append(o.rec.obs, obsEvent{kind: oRef, now: now, rank: rank})
}

func (o *recordingObserver) ObserveBulkRefresh(now dram.Cycle, rank int) {
	o.rec.obs = append(o.rec.obs, obsEvent{kind: oBulk, now: now, rank: rank})
}

// pointTraits are the stream-shaping properties of a configuration,
// probed from a throwaway channel-0 instance.
type pointTraits struct {
	throttler bool
	tax       dram.Cycle
	reserve   float64
}

func probeTraits(f TrackerFactory) pointTraits {
	t := f(0)
	var tr pointTraits
	_, tr.throttler = t.(rh.Throttler)
	if x, ok := t.(rh.TimingTaxer); ok {
		tr.tax = x.ActTax()
	}
	if x, ok := t.(rh.LLCReserver); ok {
		tr.reserve = x.LLCReservedFraction()
	}
	return tr
}

// RunBatch executes every point against base's workload, decoding the
// trace stream once. The first non-throttling point runs at full
// fidelity as the lead; every other compatible point replays the
// lead's recorded tracker inputs in lockstep, falling back to an
// independent run (same decoded buffers) on any action divergence.
// Results are positionally parallel to points and byte-identical to
// what sim.Run would produce for each configuration; outcomes say
// which path produced each one. base's Tracker, Mode and Observer
// fields are ignored.
func RunBatch(base Config, points []BatchPoint) ([]Result, []BatchOutcome, error) {
	if len(points) == 0 {
		return nil, nil, fmt.Errorf("sim: RunBatch needs at least one point")
	}
	base = base.withDefaults()
	if len(base.Traces) == 0 {
		return nil, nil, fmt.Errorf("sim: no traces")
	}

	pts := slices.Clone(points)
	for i := range pts {
		if pts[i].Tracker == nil {
			pts[i].Tracker = NopFactory
		}
	}

	bufs := make([]*traceBuffer, len(base.Traces))
	for i, t := range base.Traces {
		bufs[i] = &traceBuffer{src: t}
	}
	cursors := func() []cpu.Trace {
		out := make([]cpu.Trace, len(bufs))
		for i, b := range bufs {
			out[i] = &traceCursor{b: b}
		}
		return out
	}

	traits := make([]pointTraits, len(pts))
	for i := range pts {
		traits[i] = probeTraits(pts[i].Tracker)
	}
	lead := -1
	for i := range pts {
		if !traits[i].throttler {
			lead = i
			break
		}
	}

	results := make([]Result, len(pts))
	outcomes := make([]BatchOutcome, len(pts))
	runIndependent := func(i int) error {
		cfg := base
		cfg.Tracker = pts[i].Tracker
		cfg.Mode = pts[i].Mode
		cfg.Observer = pts[i].Observer
		cfg.Traces = cursors()
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}

	if lead < 0 {
		// Every point throttles: there is no shared stream to record.
		for i := range pts {
			outcomes[i] = BatchOutcome{Reason: FallbackThrottler}
			if err := runIndependent(i); err != nil {
				return nil, nil, err
			}
		}
		return results, outcomes, nil
	}

	eligible := make([]bool, len(pts))
	needObs := false
	for i := range pts {
		switch {
		case i == lead:
			outcomes[i] = BatchOutcome{Reason: FallbackLead}
		case traits[i].throttler:
			outcomes[i] = BatchOutcome{Reason: FallbackThrottler}
		case pts[i].Mode != pts[lead].Mode:
			outcomes[i] = BatchOutcome{Reason: FallbackMode}
		case traits[i].tax != traits[lead].tax:
			outcomes[i] = BatchOutcome{Reason: FallbackActTax}
		case traits[i].reserve != traits[lead].reserve:
			outcomes[i] = BatchOutcome{Reason: FallbackLLCReserve}
		default:
			eligible[i] = true
			if pts[i].Observer != nil {
				needObs = true
			}
		}
	}

	rec := &batchRecorder{chans: make([]chanRecord, base.Geometry.Channels), recordObs: needObs}
	var extraObs func(int) rh.Observer
	if needObs {
		extraObs = func(ch int) rh.Observer { return &recordingObserver{rec: &rec.chans[ch]} }
	}
	leadCfg := base
	leadCfg.Tracker = pts[lead].Tracker
	leadCfg.Mode = pts[lead].Mode
	leadCfg.Observer = pts[lead].Observer
	leadCfg.Traces = cursors()
	leadRes, err := run(leadCfg, rec.wrapTracker, extraObs)
	if err != nil {
		return nil, nil, err
	}
	results[lead] = leadRes

	for i := range pts {
		if i == lead {
			continue
		}
		if eligible[i] {
			res, divergedAt, ok := rec.replay(pts[i], leadRes)
			if ok {
				results[i] = res
				outcomes[i] = BatchOutcome{Lockstep: true}
				continue
			}
			outcomes[i] = BatchOutcome{Reason: FallbackDiverged, DivergedAt: divergedAt}
		}
		if err := runIndependent(i); err != nil {
			return nil, nil, err
		}
	}
	return results, outcomes, nil
}

// tableTrack accumulates a replayed follower's table-occupancy samples
// per telemetry window, mirroring the live recorder (last sample in a
// window wins; the track exists only once a sample lands).
type tableTrack struct {
	sampled bool
	seen    []bool
	used    []int
	resets  []uint64
	cap     int
}

// replay advances one eligible point's trackers through the recorded
// stream. On full action agreement it assembles the point's Result
// from the lead's (cloned) system-side fields plus the follower's own
// tracker-side fields; on the first mismatch it reports divergence.
func (r *batchRecorder) replay(p BatchPoint, lead Result) (Result, dram.Cycle, bool) {
	nWin := 0
	var window dram.Cycle
	if lead.Series != nil {
		nWin = lead.Series.NumWindows()
		window = lead.Series.Window
	}
	var warm, fin rh.Stats
	names := make([]string, 0, len(r.chans))
	tables := make([]tableTrack, len(r.chans))
	buf := make([]rh.Action, 0, 64)

	for ch := range r.chans {
		cr := &r.chans[ch]
		tr := p.Tracker(ch)
		names = append(names, tr.Name())
		tab, isTab := tr.(rh.TableReporter)
		var tt *tableTrack
		if isTab && nWin > 0 {
			tables[ch] = tableTrack{
				seen:   make([]bool, nWin),
				used:   make([]int, nWin),
				resets: make([]uint64, nWin),
			}
			tt = &tables[ch]
		}
		statsMark := 0
		ai := 0
		for e := range cr.events {
			ev := &cr.events[e]
			switch ev.kind {
			case evAct, evTick:
				if ev.kind == evAct {
					buf = tr.OnActivate(ev.now, ev.loc, buf[:0])
				} else {
					buf = tr.Tick(ev.now, buf[:0])
				}
				want := cr.acts[ai : ai+int(ev.nAct)]
				ai += int(ev.nAct)
				if len(buf) != len(want) {
					return Result{}, ev.now, false
				}
				for k := range want {
					if buf[k] != want[k] {
						return Result{}, ev.now, false
					}
				}
				if ev.kind == evTick && tt != nil {
					// The live controller samples occupancy right after
					// each periodic tick (tracker state cannot change
					// between Tick returning and the sample).
					occ := tab.TableOccupancy()
					w := 0
					if ev.now >= 0 {
						w = int(ev.now / window)
						if w >= nWin {
							w = nWin - 1
						}
					}
					tt.sampled = true
					tt.seen[w] = true
					tt.used[w] = occ.Used
					tt.resets[w] = occ.Resets
					tt.cap = occ.Capacity
				}
			case evStats:
				s := tr.Stats()
				if statsMark == 0 {
					accumStats(&warm, s)
				} else {
					accumStats(&fin, s)
				}
				statsMark++
			}
		}
		if statsMark != 2 {
			// The engines snapshot exactly twice; anything else means the
			// recording is unusable — rerun independently.
			return Result{}, 0, false
		}
	}

	// Lockstep confirmed: only now touch the point's observer, so a
	// diverging point's observer (e.g. a security audit accumulating
	// state) never sees a partial stream before its independent rerun.
	if p.Observer != nil {
		for ch := range r.chans {
			o := p.Observer(ch)
			if o == nil {
				continue
			}
			for i := range r.chans[ch].obs {
				e := &r.chans[ch].obs[i]
				switch e.kind {
				case oACT:
					o.ObserveACT(e.now, e.loc, e.injected)
				case oMit:
					o.ObserveMitigation(e.now, e.akind, e.loc, e.row)
				case oRef:
					o.ObserveRefresh(e.now, e.rank)
				case oBulk:
					o.ObserveBulkRefresh(e.now, e.rank)
				}
			}
		}
	}

	res := Result{
		IPC:          slices.Clone(lead.IPC),
		Instructions: slices.Clone(lead.Instructions),
		Cycles:       lead.Cycles,
		Counters:     lead.Counters,
		Mem:          lead.Mem,
		LLCHitRate:   lead.LLCHitRate,
		TrackerNames: names,
	}
	subStats(&fin, warm)
	res.Tracker = fin
	if lead.Attribution != nil {
		res.Attribution = lead.Attribution.Clone()
	}
	if lead.Series != nil {
		s := lead.Series.Clone()
		for ch := range s.Channels {
			cs := &s.Channels[ch]
			tt := &tables[ch]
			if tt.sampled {
				// Forward-fill exactly like the live recorder's Finish.
				filledUsed := make([]int, nWin)
				filledResets := make([]uint64, nWin)
				used, resets := -1, uint64(0)
				for w := 0; w < nWin; w++ {
					if tt.seen[w] {
						used, resets = tt.used[w], tt.resets[w]
					}
					filledUsed[w] = used
					filledResets[w] = resets
				}
				cs.TableUsed = filledUsed
				cs.TableResets = filledResets
				cs.TableCap = tt.cap
			} else {
				cs.TableUsed = nil
				cs.TableResets = nil
				cs.TableCap = 0
			}
		}
		res.Series = s
	}
	return res, 0, true
}

func accumStats(dst *rh.Stats, s rh.Stats) {
	dst.Activations += s.Activations
	dst.Mitigations += s.Mitigations
	dst.VictimRefreshes += s.VictimRefreshes
	dst.BulkResets += s.BulkResets
	dst.InjectedReads += s.InjectedReads
	dst.InjectedWrites += s.InjectedWrites
	dst.Throttled += s.Throttled
}
