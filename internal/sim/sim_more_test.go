package sim

import (
	"testing"

	"dapper/internal/attack"
	"dapper/internal/core"
	"dapper/internal/cpu"
	"dapper/internal/dram"
	"dapper/internal/rh"
	"dapper/internal/trackers/blockhammer"
	"dapper/internal/trackers/comet"
	"dapper/internal/trackers/hydra"
)

func TestHydraAttackGeneratesCounterTraffic(t *testing.T) {
	// The attack's group-counter warmup phase alone takes ~200us of
	// attacker time, so run the attacker solo with a window that
	// reaches the RCC-thrashing steady state.
	g := dram.Baseline()
	cfg := quickCfg([]cpu.Trace{attack.MustTrace(attack.Config{Geometry: g, NRH: 500, Kind: attack.HydraConflict})})
	cfg.Warmup = dram.US(200)
	cfg.Measure = dram.US(300)
	cfg.Tracker = func(ch int) rh.Tracker {
		return hydra.New(ch, hydra.Config{Geometry: g, NRH: 500})
	}
	res := MustRun(cfg)
	if res.Counters.InjRD < 1000 {
		t.Fatalf("Hydra attack produced only %d counter reads", res.Counters.InjRD)
	}
	if res.Counters.InjWR == 0 {
		t.Fatal("no counter write-backs")
	}
}

func TestCoMeTAttackForcesBulkResets(t *testing.T) {
	g := dram.Baseline()
	w := mustWorkload(t, "ycsb_a")
	cfg := quickCfg(append(BenignTraces(w, 3, g, 1),
		attack.MustTrace(attack.Config{Geometry: g, NRH: 500, Kind: attack.RATThrash})))
	cfg.Warmup = dram.US(5) // catch the first reset inside the window
	cfg.Measure = dram.US(600)
	cfg.Tracker = func(ch int) rh.Tracker {
		return comet.New(ch, comet.Config{Geometry: g, NRH: 500})
	}
	res := MustRun(cfg)
	if res.Tracker.BulkResets == 0 {
		t.Fatal("RAT thrash never forced a bulk reset")
	}
}

func TestCoMeTAttackCrushesBenignPerf(t *testing.T) {
	g := dram.Baseline()
	w := mustWorkload(t, "tpcc64")
	mk := func(kind attack.Kind, factory TrackerFactory) Result {
		cfg := quickCfg(append(BenignTraces(w, 3, g, 1),
			attack.MustTrace(attack.Config{Geometry: g, NRH: 500, Kind: kind})))
		cfg.Warmup = dram.US(60)
		cfg.Measure = dram.US(250)
		if factory != nil {
			cfg.Tracker = factory
		}
		return MustRun(cfg)
	}
	base := mk(attack.None, nil)
	hit := mk(attack.RATThrash, func(ch int) rh.Tracker {
		return comet.New(ch, comet.Config{Geometry: g, NRH: 500})
	})
	np := NormalizedPerf(hit, base, BenignCores(4))
	if np > 0.4 {
		t.Fatalf("CoMeT under RAT thrash at %.3f; paper shows ~0.1", np)
	}
}

func TestDapperHTrackerAddsAlmostNothingUnderRefreshAttack(t *testing.T) {
	// The paper's central claim, as an integration test: DAPPER-H's
	// delta versus the insecure system running the SAME attacker is
	// within a few percent.
	g := dram.Baseline()
	w := mustWorkload(t, "tpcc64")
	mk := func(factory TrackerFactory) Result {
		cfg := quickCfg(append(BenignTraces(w, 3, g, 1),
			attack.MustTrace(attack.Config{Geometry: g, NRH: 500, Kind: attack.Refresh})))
		cfg.Warmup = dram.US(60)
		cfg.Measure = dram.US(250)
		if factory != nil {
			cfg.Tracker = factory
		}
		return MustRun(cfg)
	}
	insecure := mk(nil)
	secured := mk(func(ch int) rh.Tracker {
		d, err := core.NewDapperH(ch, core.Config{Geometry: g, NRH: 500})
		if err != nil {
			panic(err)
		}
		return d
	})
	np := NormalizedPerf(secured, insecure, BenignCores(4))
	if np < 0.93 {
		t.Fatalf("DAPPER-H added %.1f%% slowdown under refresh attack; paper says ~1%%",
			(1-np)*100)
	}
}

func TestBlockHammerThrottlesInFullSystem(t *testing.T) {
	g := dram.Baseline()
	// A lone refresh attacker with BlockHammer: hammered rows get
	// blacklisted and paced, so the attacker's ACT rate collapses.
	mk := func(factory TrackerFactory) Result {
		cfg := quickCfg([]cpu.Trace{attack.MustTrace(attack.Config{Geometry: g, NRH: 500, Kind: attack.Refresh})})
		cfg.Warmup = dram.US(50)
		cfg.Measure = dram.US(200)
		if factory != nil {
			cfg.Tracker = factory
		}
		return MustRun(cfg)
	}
	free := mk(nil)
	throttled := mk(func(ch int) rh.Tracker {
		return blockhammer.New(ch, blockhammer.Config{Geometry: g, NRH: 500})
	})
	if throttled.Counters.ACT >= free.Counters.ACT/2 {
		t.Fatalf("BlockHammer barely throttled: %d vs %d ACTs",
			throttled.Counters.ACT, free.Counters.ACT)
	}
	if throttled.Tracker.Throttled == 0 {
		t.Fatal("no throttling recorded")
	}
}

func TestEightChannelGeometryRuns(t *testing.T) {
	g := dram.Baseline()
	g.Channels = 8
	g.Ranks = 4
	w := mustWorkload(t, "403.gcc")
	cfg := quickCfg(BenignTraces(w, 4, g, 1))
	cfg.Geometry = g
	cfg.Warmup = dram.US(20)
	cfg.Measure = dram.US(80)
	res := MustRun(cfg)
	if res.IPC[0] <= 0 {
		t.Fatal("8-channel system produced no progress")
	}
}

// cyclicTrace sweeps a fixed working set repeatedly.
type cyclicTrace struct {
	at   uint64
	span uint64
}

func (c *cyclicTrace) Next() cpu.Record {
	addr := c.at
	c.at += 64
	if c.at >= c.span {
		c.at = 0
	}
	return cpu.Record{Bubbles: 4, Addr: addr}
}

func TestCustomLLCSize(t *testing.T) {
	// A 512KB cyclic working set: resident in a 8MB LLC, thrashing in
	// a 64KB one.
	mk := func(llcBytes int) Result {
		cfg := quickCfg([]cpu.Trace{&cyclicTrace{span: 512 << 10}})
		cfg.LLCBytes = llcBytes
		cfg.Warmup = dram.US(30)
		cfg.Measure = dram.US(100)
		return MustRun(cfg)
	}
	small := mk(64 << 10)
	big := mk(8 << 20)
	if small.LLCHitRate >= 0.5 {
		t.Fatalf("64KB LLC hit rate %.3f, expected thrash", small.LLCHitRate)
	}
	if big.LLCHitRate <= 0.9 {
		t.Fatalf("8MB LLC hit rate %.3f, expected resident", big.LLCHitRate)
	}
	if small.IPC[0] >= big.IPC[0] {
		t.Fatalf("thrash IPC %.3f >= resident IPC %.3f", small.IPC[0], big.IPC[0])
	}
}

func TestAttackScenarioHelper(t *testing.T) {
	g := dram.Baseline()
	w := mustWorkload(t, "ycsb_a")
	traces := AttackScenario(w, 4, g, 500, attack.Refresh, 1)
	if len(traces) != 4 {
		t.Fatalf("scenario has %d traces", len(traces))
	}
	// Last trace is the attacker: non-cacheable records.
	if rec := traces[3].Next(); !rec.NonCacheable {
		t.Fatal("attacker trace should be non-cacheable")
	}
	if rec := traces[0].Next(); rec.NonCacheable {
		t.Fatal("benign trace should be cacheable")
	}
}
