package sim

import (
	"dapper/internal/attack"
	"dapper/internal/cpu"
	"dapper/internal/dram"
	"dapper/internal/workloads"
)

// BenignTraces builds n copies of workload w, each in its own slice of
// the physical address space (homogeneous multi-programming, §IV).
func BenignTraces(w workloads.Workload, n int, geo dram.Geometry, seed uint64) []cpu.Trace {
	traces := make([]cpu.Trace, n)
	slice := geo.TotalBytes() / uint64(n)
	for i := range traces {
		traces[i] = workloads.NewTrace(w, uint64(i)*slice, slice, seed+uint64(i)*0x9E37+1)
	}
	return traces
}

// AttackScenario builds the paper's Perf-Attack co-run: n-1 benign
// copies of w plus the attacker on the last core.
func AttackScenario(w workloads.Workload, n int, geo dram.Geometry, nrh uint32, kind attack.Kind, seed uint64) []cpu.Trace {
	traces := BenignTraces(w, n-1, geo, seed)
	traces = append(traces, attack.MustTrace(attack.Config{Geometry: geo, NRH: nrh, Kind: kind}))
	return traces
}

// BenignCores returns the core indices holding benign workloads for a
// trace set built by AttackScenario (all but the last).
func BenignCores(n int) []int {
	cores := make([]int, n-1)
	for i := range cores {
		cores[i] = i
	}
	return cores
}

// NormalizedPerf returns the mean IPC ratio of the given cores between a
// treatment run and its baseline — the paper's "normalized performance"
// metric. Cores whose baseline IPC is zero carry no information and are
// skipped from both the sum and the denominator (counting them only in
// the denominator would silently deflate the mean).
func NormalizedPerf(treat, base Result, cores []int) float64 {
	sum, n := 0.0, 0
	for _, c := range cores {
		if base.IPC[c] > 0 {
			sum += treat.IPC[c] / base.IPC[c]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
