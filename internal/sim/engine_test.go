package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"dapper/internal/attack"
	"dapper/internal/core"
	"dapper/internal/cpu"
	"dapper/internal/dram"
	"dapper/internal/rh"
	"dapper/internal/telemetry"
	"dapper/internal/trackers/blockhammer"
	"dapper/internal/trackers/comet"
	"dapper/internal/trackers/hydra"
)

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
	}{
		{"", EngineEvent},
		{"event", EngineEvent},
		{"cycle", EngineCycle},
	} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Fatal("expected error for unknown engine")
	}
}

func TestPartialTimingRejected(t *testing.T) {
	g := dram.Baseline()
	cfg := quickCfg(BenignTraces(mustWorkload(t, "429.mcf"), 4, g, 1))
	cfg.Timing = dram.Timing{TRC: dram.NS(48)} // everything else zero
	if _, err := Run(cfg); err == nil {
		t.Fatal("partially-filled Timing must be rejected, not silently run")
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	g := dram.Baseline()
	cfg := quickCfg(BenignTraces(mustWorkload(t, "429.mcf"), 4, g, 1))
	cfg.Engine = Engine("warp")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
}

// engineScenario is one cell of the sim-level equivalence matrix.
type engineScenario struct {
	name    string
	tracker TrackerFactory
	kind    attack.Kind
}

func engineScenarios(g dram.Geometry) []engineScenario {
	return []engineScenario{
		{"insecure-benign", nil, attack.None},
		{"insecure-thrash", nil, attack.CacheThrash},
		{"dapper-h-refresh", func(ch int) rh.Tracker {
			d, err := core.NewDapperH(ch, core.Config{Geometry: g, NRH: 500})
			if err != nil {
				panic(err)
			}
			return d
		}, attack.Refresh},
		// BlockHammer exercises the throttling wake-time bound, Hydra the
		// injected counter traffic, CoMeT the bulk structure resets.
		{"blockhammer-refresh", func(ch int) rh.Tracker {
			return blockhammer.New(ch, blockhammer.Config{Geometry: g, NRH: 500})
		}, attack.Refresh},
		{"hydra-conflict", func(ch int) rh.Tracker {
			return hydra.New(ch, hydra.Config{Geometry: g, NRH: 500})
		}, attack.HydraConflict},
		{"comet-rat-thrash", func(ch int) rh.Tracker {
			return comet.New(ch, comet.Config{Geometry: g, NRH: 500})
		}, attack.RATThrash},
	}
}

func scenarioConfig(t *testing.T, g dram.Geometry, sc engineScenario) Config {
	t.Helper()
	var traces []cpu.Trace
	if sc.kind == attack.None {
		traces = BenignTraces(mustWorkload(t, "429.mcf"), 4, g, 3)
	} else {
		traces = append(BenignTraces(mustWorkload(t, "ycsb_a"), 3, g, 3),
			attack.MustTrace(attack.Config{Geometry: g, NRH: 500, Kind: sc.kind}))
	}
	cfg := Config{
		Geometry: g,
		Traces:   traces,
		Warmup:   dram.US(20),
		Measure:  dram.US(80),
	}
	if sc.tracker != nil {
		cfg.Tracker = sc.tracker
	}
	return cfg
}

// TestEngineEquivalence is the tentpole's safety net: the event engine
// must produce a Result identical to the per-cycle reference loop.
// Traces are generative and deterministic, so the configs rebuilt per
// engine replay the same instruction streams.
func TestEngineEquivalence(t *testing.T) {
	g := dram.Baseline()
	for _, sc := range engineScenarios(g) {
		t.Run(sc.name, func(t *testing.T) {
			cyc := scenarioConfig(t, g, sc)
			cyc.Engine = EngineCycle
			ev := scenarioConfig(t, g, sc)
			ev.Engine = EngineEvent
			want := MustRun(cyc)
			got := MustRun(ev)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("engines diverge:\n cycle: %+v\n event: %+v", want, got)
			}
		})
	}
}

// TestEngineEquivalenceTelemetry extends the equivalence matrix to the
// windowed telemetry: Result.Series must be byte-identical between the
// cycle and event engines and across reruns, and switching telemetry on
// must not perturb any other Result field. Byte comparison (not
// DeepEqual) is deliberate — the serialized series is what sinks cache
// and goldens pin.
func TestEngineEquivalenceTelemetry(t *testing.T) {
	g := dram.Baseline()
	for _, sc := range engineScenarios(g) {
		t.Run(sc.name, func(t *testing.T) {
			mk := func(e Engine, window dram.Cycle) Config {
				cfg := scenarioConfig(t, g, sc)
				cfg.Engine = e
				cfg.TelemetryWindow = window
				return cfg
			}
			want := MustRun(mk(EngineCycle, dram.US(5)))
			got := MustRun(mk(EngineEvent, dram.US(5)))
			if want.Series == nil || got.Series == nil {
				t.Fatal("TelemetryWindow set but Series missing")
			}
			wantJSON, err := json.Marshal(want.Series)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(got.Series)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("Series diverges between engines:\n cycle: %s\n event: %s", wantJSON, gotJSON)
			}
			rerun := MustRun(mk(EngineEvent, dram.US(5)))
			rerunJSON, _ := json.Marshal(rerun.Series)
			if !bytes.Equal(gotJSON, rerunJSON) {
				t.Fatal("Series differs across reruns of the same config")
			}
			// Telemetry must be purely additive: all other fields match a
			// telemetry-off run exactly.
			off := MustRun(mk(EngineEvent, 0))
			if off.Series != nil {
				t.Fatal("Series present with telemetry off")
			}
			onStripped := got
			onStripped.Series = nil
			if !reflect.DeepEqual(off, onStripped) {
				t.Fatalf("telemetry perturbed the Result:\n off: %+v\n on:  %+v", off, onStripped)
			}
		})
	}
}

// TestEngineEquivalenceAttribution extends the equivalence matrix to
// the slowdown-attribution layer: Result.Attribution (CPI stacks,
// blame buckets, the core→core matrix) and the windowed blame series
// must be byte-identical between the cycle and event engines, and
// switching attribution on must not perturb any other Result field.
// Every run here also passes sim.Run's internal conservation checks
// (CPI buckets sum to cycles; blame sums to the measured read wait;
// window sums equal grand totals) — a failure surfaces as a Run error.
func TestEngineEquivalenceAttribution(t *testing.T) {
	g := dram.Baseline()
	for _, sc := range engineScenarios(g) {
		t.Run(sc.name, func(t *testing.T) {
			mk := func(e Engine, attr bool) Config {
				cfg := scenarioConfig(t, g, sc)
				cfg.Engine = e
				cfg.TelemetryWindow = dram.US(5)
				cfg.Attribution = attr
				return cfg
			}
			want := MustRun(mk(EngineCycle, true))
			got := MustRun(mk(EngineEvent, true))
			if want.Attribution == nil || got.Attribution == nil {
				t.Fatal("Attribution set but Result.Attribution missing")
			}
			wantJSON, err := json.Marshal(want.Attribution)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(got.Attribution)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("Attribution diverges between engines:\n cycle: %s\n event: %s", wantJSON, gotJSON)
			}
			wantSeries, _ := json.Marshal(want.Series)
			gotSeries, _ := json.Marshal(got.Series)
			if !bytes.Equal(wantSeries, gotSeries) {
				t.Fatal("windowed stacks (Series with blame) diverge between engines")
			}
			if got.Series.Blame == nil || got.Series.Cores[0].StallROB == nil {
				t.Fatal("attribution+telemetry run must carry windowed blame and the stall split")
			}
			// Attribution must be purely additive: all other fields match
			// an attribution-off run exactly (the Series differs only by
			// the blame/stall-split extensions, so compare it separately).
			off := MustRun(mk(EngineEvent, false))
			if off.Attribution != nil {
				t.Fatal("Attribution present with attribution off")
			}
			if off.Series.Blame != nil || off.Series.Cores[0].StallROB != nil {
				t.Fatal("blame series present with attribution off")
			}
			onStripped := got
			onStripped.Attribution = nil
			onStripped.Series = off.Series
			if !reflect.DeepEqual(off, onStripped) {
				t.Fatalf("attribution perturbed the Result:\n off: %+v\n on:  %+v", off, onStripped)
			}
			// The telemetry series itself must also be untouched apart
			// from the additive blame/stall-split extensions.
			stripped := *got.Series
			stripped.Blame = nil
			coresCopy := make([]telemetry.CoreSeries, len(stripped.Cores))
			copy(coresCopy, stripped.Cores)
			for i := range coresCopy {
				coresCopy[i].StallROB, coresCopy[i].StallBP = nil, nil
			}
			stripped.Cores = coresCopy
			strippedJSON, _ := json.Marshal(&stripped)
			offSeriesJSON, _ := json.Marshal(off.Series)
			if !bytes.Equal(strippedJSON, offSeriesJSON) {
				t.Fatal("attribution perturbed the telemetry series beyond its additive extensions")
			}
		})
	}
}

// TestEngineDeterminism runs the same config twice under each engine and
// requires identical Results.
func TestEngineDeterminism(t *testing.T) {
	g := dram.Baseline()
	sc := engineScenarios(g)[2] // dapper-h under refresh attack
	for _, e := range []Engine{EngineCycle, EngineEvent} {
		cfgA := scenarioConfig(t, g, sc)
		cfgA.Engine = e
		cfgB := scenarioConfig(t, g, sc)
		cfgB.Engine = e
		if a, b := MustRun(cfgA), MustRun(cfgB); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s engine is non-deterministic:\n %+v\n %+v", e, a, b)
		}
	}
}

// TestEngineEquivalenceFourRanks covers the fixed >2-rank refresh
// stagger under both engines on an 8-channel, 4-rank geometry.
func TestEngineEquivalenceFourRanks(t *testing.T) {
	g := dram.Baseline()
	g.Channels = 8
	g.Ranks = 4
	mk := func(e Engine) Config {
		cfg := Config{
			Geometry: g,
			Traces:   BenignTraces(mustWorkload(t, "403.gcc"), 4, g, 1),
			Warmup:   dram.US(15),
			Measure:  dram.US(60),
			Engine:   e,
		}
		return cfg
	}
	want := MustRun(mk(EngineCycle))
	got := MustRun(mk(EngineEvent))
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("engines diverge on 4-rank geometry:\n cycle: %+v\n event: %+v", want, got)
	}
}
