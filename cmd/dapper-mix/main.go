// Command dapper-mix runs heterogeneous multi-programmed scenario
// sweeps: seeded random workload mixes (stratified by the paper's
// >= 2-RBMPKI memory-intensity grouping) with k attackers on seeded
// random cores, swept over tracker x mix x NRH and scored by
// weighted/harmonic speedup and fairness against per-core isolated
// baselines.
//
// Usage:
//
//	dapper-mix -profile tiny -mixes 2 -attackers 1 -tracker none,hydra,dapper-h
//	dapper-mix -profile quick -mixes 8 -attackers 2 -attack hammer -audit -check
//	dapper-mix -cores 6 -intensive 3 -nrh 125,500 -out mixes/
//
// The report (mix-report.{jsonl,csv}) carries no engine tag and no
// wall-clock: rerunning with the same flags — or with the other
// -engine — must produce byte-identical files. -check turns sanity
// into an exit code: metrics must be finite and within bounds, and
// (with -audit) the insecure baseline must escape under attacker mixes
// while every real tracker holds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dapper/internal/diag"
	"dapper/internal/exp"
	"dapper/internal/harness"
	"dapper/internal/mix"
	"dapper/internal/rh"
	"dapper/internal/sim"
	"dapper/internal/telemetry"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	trackers := flag.String("tracker", "all", "comma list of tracker ids (see -list-trackers), or 'all'")
	nMixes := flag.Int("mixes", 4, "number of generated mixes (mix i uses seed+i)")
	cores := flag.Int("cores", 4, "slots per mix")
	attackers := flag.Int("attackers", 1, "attacker slots per mix")
	attackName := flag.String("attack", "refresh", "attacker pattern (hand-written kinds or 'hammer')")
	intensive := flag.Int("intensive", -1, "benign slots from the >=2-RBMPKI group (-1 = seeded random split)")
	nrhs := flag.String("nrh", "500", "comma list of RowHammer thresholds")
	modeName := flag.String("mode", "VRR-BR1", "mitigation mode (VRR-BR1|VRR-BR2|RFMsb|DRFMsb)")
	profile := flag.String("profile", "tiny", "tiny, quick or full (windows, geometry)")
	seed := flag.Uint64("seed", 1, "mix-generation + workload/attack seed")
	engineName := flag.String("engine", "event", "simulation engine: event or cycle")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers (<=0 = NumCPU)")
	cacheDir := flag.String("cache", "", "disk result-cache directory")
	outDir := flag.String("out", ".", "output directory for mix-report.{jsonl,csv}")
	audit := flag.Bool("audit", false, "attach the shadow security oracle to every mix run")
	attr := flag.Bool("attr", false, "collect slowdown attribution (blame columns in the report rows)")
	check := flag.Bool("check", false, "exit non-zero on out-of-bounds metrics (and, with -audit, on conformance violations)")
	benchOut := flag.String("bench", "", "write a runs/sec benchmark JSON to this path")
	telemetryDir := flag.String("telemetry", "", "write harness telemetry (trace.json for Perfetto + counters.json) to this directory")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (e.g. localhost:6060)")
	listTrackers := flag.Bool("list-trackers", false, "list tracker ids and exit")
	flag.Parse()

	if *listTrackers {
		for _, id := range exp.KnownTrackers() {
			fmt.Println(id)
		}
		return
	}

	var p exp.Profile
	switch *profile {
	case "tiny":
		p = exp.Tiny()
	case "quick":
		p = exp.Quick()
	case "full":
		p = exp.Full()
	default:
		fatal(fmt.Errorf("unknown profile %q (tiny|quick|full)", *profile))
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	p.Engine = engine
	p.Seed = *seed
	p.Attribution = *attr

	mode, err := rh.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	atk, err := exp.ParseAuditAttack(*attackName)
	if err != nil {
		fatal(err)
	}
	atkSlot := mix.Slot{Attack: atk.Point.Kind.String(), Params: atk.Point.Params}
	trackerIDs := exp.KnownTrackers()
	if *trackers != "all" {
		trackerIDs = nil
		for _, id := range strings.Split(*trackers, ",") {
			trackerIDs = append(trackerIDs, strings.TrimSpace(id))
		}
	}
	var nrhSet []uint32
	for _, s := range strings.Split(*nrhs, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
		if err != nil || v == 0 {
			fatal(fmt.Errorf("bad -nrh value %q", s))
		}
		nrhSet = append(nrhSet, uint32(v))
	}
	if *nMixes <= 0 || *cores <= 0 {
		fatal(fmt.Errorf("-mixes and -cores must be positive (got %d, %d)", *nMixes, *cores))
	}
	*jobs = harness.NormalizeJobs(*jobs)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	mixes := make([]mix.Spec, *nMixes)
	for i := range mixes {
		mixes[i], err = mix.Generate(mix.GenConfig{
			Cores:     *cores,
			Attackers: *attackers,
			Attack:    atkSlot,
			Intensive: *intensive,
			Seed:      *seed + uint64(i),
		})
		if err != nil {
			fatal(err)
		}
	}

	cache, err := harness.NewCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	var tracer *telemetry.Tracer
	if *telemetryDir != "" {
		tracer = telemetry.NewTracer()
	}
	blameAgg := diag.NewBlameAgg()
	pool := harness.NewPool(harness.Options{
		OnResult: blameAgg.Observe,
		Workers:  *jobs,
		Cache:    cache,
		Tracer:   tracer,
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d simulations]", done, total)
		},
	})
	if *debugAddr != "" {
		blameAgg.Publish()
		dbg, err := diag.Serve(*debugAddr, pool.Stats)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/vars\n", dbg.Addr())
	}

	//dapper:wallclock sweep throughput (cells/s) for the BENCH_mix.json record
	start := time.Now()
	rows, err := exp.RunMixSweep(exp.MixRequest{
		Trackers: trackerIDs,
		Mixes:    mixes,
		NRHs:     nrhSet,
		Mode:     mode,
		Profile:  p,
		Audit:    *audit,
	}, pool)
	if err != nil {
		fmt.Fprintln(os.Stderr)
		fatal(err)
	}
	if err := pool.Close(); err != nil {
		fatal(err)
	}
	//dapper:wallclock closes the throughput measurement started above
	elapsed := time.Since(start)
	fmt.Fprint(os.Stderr, "\r\033[K")
	if tracer != nil {
		if err := harness.WriteTelemetry(*telemetryDir, tracer, pool.Stats()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry written to %s\n", *telemetryDir)
	}

	for _, name := range []string{"mix-report.jsonl", "mix-report.csv"} {
		f, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(name, ".jsonl") {
			err = mix.WriteReportJSONL(f, rows)
		} else {
			err = mix.WriteReportCSV(f, rows)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}

	st := pool.Stats()
	fmt.Printf("mix sweep: %d mixes x %d trackers x %d NRHs = %d cells (%d unique runs, %d simulated, %d cache hits)\n",
		len(mixes), len(trackerIDs), len(nrhSet), len(rows), st.Unique, st.Ran, st.CacheHits)
	for _, sp := range mixes {
		fmt.Printf("  %s  %s (%d intensive, %d attackers)\n",
			sp.ID(), sp.Label(), sp.Intensive(), sp.Attackers())
	}
	fmt.Printf("report written to %s\n", *outDir)

	if *check {
		failed := false
		fail := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "check FAILED: "+format+"\n", args...)
			failed = true
		}
		escapesByTracker := make(map[string]uint64)
		audited := false
		verdict := "metrics in bounds"
		for _, r := range rows {
			n := float64(len(r.PerCore))
			bad := math.IsNaN(r.Weighted) || math.IsInf(r.Weighted, 0) ||
				math.IsNaN(r.Harmonic) || math.IsInf(r.Harmonic, 0) ||
				math.IsNaN(r.Fairness) || math.IsInf(r.Fairness, 0)
			if bad {
				fail("%s/%s nrh=%d: non-finite metrics", r.Tracker, r.Mix, r.NRH)
			}
			// A fully-starved benign core is a legitimate attack outcome,
			// so the lower bounds admit zero.
			if r.Weighted < 0 || r.Weighted > 1.5*n {
				fail("%s/%s nrh=%d: weighted speedup %g outside [0, 1.5*%g]", r.Tracker, r.Mix, r.NRH, r.Weighted, n)
			}
			if r.Fairness < 0 || r.Fairness > 1 {
				fail("%s/%s nrh=%d: fairness %g outside [0,1]", r.Tracker, r.Mix, r.NRH, r.Fairness)
			}
			if r.Audited {
				audited = true
				escapesByTracker[r.Tracker] += r.Escapes
			}
		}
		if audited {
			// Real trackers must always hold; demanding escapes from the
			// insecure baseline is only meaningful when the sweep both
			// included it and ran attacker slots with the escape-forcing
			// focused hammer — a refresh attacker at NRH 500 in a short
			// window honestly cannot escape, and that must not read as a
			// check failure.
			basePresent := false
			for _, id := range trackerIDs {
				basePresent = basePresent || id == "none"
			}
			baselineGate := strings.EqualFold(*attackName, "hammer") && *attackers > 0 && basePresent
			for _, id := range trackerIDs {
				n := escapesByTracker[id]
				if id == "none" && baselineGate && n == 0 {
					fail("insecure baseline 'none' showed no escapes under %d-hammer mixes", *attackers)
				}
				if id != "none" && n > 0 {
					fail("tracker %q let %d escapes through", id, n)
				}
			}
			if baselineGate {
				verdict += ", baseline escapes, every tracker holds"
			} else {
				verdict += ", every tracker holds"
				fmt.Fprintln(os.Stderr, "note: baseline-escape gate skipped (needs 'none' in -tracker, attacker slots, and the escape-forcing 'hammer')")
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("mix check passed: " + verdict)
	}

	if *benchOut != "" {
		bench := struct {
			Profile       string  `json:"profile"`
			Mixes         int     `json:"mixes"`
			Cells         int     `json:"cells"`
			Seconds       float64 `json:"seconds"`
			CellsPerSec   float64 `json:"cells_per_sec"`
			Workers       int     `json:"workers"`
			SimulatedRuns int     `json:"simulated_runs"`
			CacheHits     int     `json:"cache_hits"`
			Timestamp     string  `json:"timestamp"`
		}{
			Profile: p.Name, Mixes: len(mixes), Cells: len(rows),
			Seconds: elapsed.Seconds(), CellsPerSec: float64(len(rows)) / elapsed.Seconds(),
			Workers: *jobs, SimulatedRuns: st.Ran, CacheHits: st.CacheHits,
			//dapper:wallclock benchmark records are timestamped provenance, never cache-keyed
			Timestamp: time.Now().UTC().Format(time.RFC3339),
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
	}
}
