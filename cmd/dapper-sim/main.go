// Command dapper-sim runs one simulation: a workload co-running with an
// optional attacker under a chosen RowHammer tracker, and prints IPC,
// DRAM and tracker statistics.
//
// Usage:
//
//	dapper-sim -workload 429.mcf -tracker dapper-h -attack refresh -nrh 500
//	dapper-sim -workload ycsb_a -tracker comet -attack rat-thrash
//	dapper-sim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"dapper/internal/attack"
	"dapper/internal/core"
	"dapper/internal/dram"
	"dapper/internal/rh"
	"dapper/internal/sim"
	"dapper/internal/trackers/abacus"
	"dapper/internal/trackers/blockhammer"
	"dapper/internal/trackers/comet"
	"dapper/internal/trackers/hydra"
	"dapper/internal/trackers/para"
	"dapper/internal/trackers/prac"
	"dapper/internal/trackers/start"
	"dapper/internal/workloads"
)

func trackerFactory(name string, geo dram.Geometry, nrh uint32) (sim.TrackerFactory, error) {
	switch name {
	case "none":
		return sim.NopFactory, nil
	case "dapper-s":
		return func(ch int) rh.Tracker {
			d, err := core.NewDapperS(ch, core.Config{Geometry: geo, NRH: nrh})
			if err != nil {
				panic(err)
			}
			return d
		}, nil
	case "dapper-h":
		return func(ch int) rh.Tracker {
			d, err := core.NewDapperH(ch, core.Config{Geometry: geo, NRH: nrh})
			if err != nil {
				panic(err)
			}
			return d
		}, nil
	case "hydra":
		return func(ch int) rh.Tracker { return hydra.New(ch, hydra.Config{Geometry: geo, NRH: nrh}) }, nil
	case "start":
		return func(ch int) rh.Tracker { return start.New(ch, start.Config{Geometry: geo, NRH: nrh}) }, nil
	case "comet":
		return func(ch int) rh.Tracker { return comet.New(ch, comet.Config{Geometry: geo, NRH: nrh}) }, nil
	case "abacus":
		return func(ch int) rh.Tracker { return abacus.New(ch, abacus.Config{Geometry: geo, NRH: nrh}) }, nil
	case "blockhammer":
		return func(ch int) rh.Tracker { return blockhammer.New(ch, blockhammer.Config{Geometry: geo, NRH: nrh}) }, nil
	case "para":
		return func(ch int) rh.Tracker { return para.NewPARA(ch, geo, nrh, rh.VRR1, 0) }, nil
	case "pride":
		return func(ch int) rh.Tracker { return para.NewPrIDE(ch, geo, nrh, rh.VRR1, 0) }, nil
	case "prac":
		return func(ch int) rh.Tracker { return prac.New(ch, prac.Config{Geometry: geo, NRH: nrh}) }, nil
	}
	return nil, fmt.Errorf("unknown tracker %q", name)
}

func main() {
	wl := flag.String("workload", "429.mcf", "benign workload name")
	tr := flag.String("tracker", "dapper-h", "tracker: none|dapper-s|dapper-h|hydra|start|comet|abacus|blockhammer|para|pride|prac")
	atk := flag.String("attack", "none", "attack on the 4th core: none|cache-thrash|hydra-conflict|streaming|rat-thrash|distinct-rows|refresh|parametric")
	nrh := flag.Uint("nrh", 500, "RowHammer threshold")
	measureUS := flag.Float64("measure", 400, "measurement window in microseconds")
	warmupUS := flag.Float64("warmup", 100, "warmup window in microseconds")
	rowsPerBank := flag.Uint("rows-per-bank", 0, "override rows per bank (0 = full 64K)")
	seed := flag.Uint64("seed", 1, "workload + attack trace seed (reproducible runs)")
	engineName := flag.String("engine", "event", "simulation engine: event (time-skipping, default) or cycle (per-cycle reference)")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-16s %-11s APKI=%.0f RBMPKI=%.1f\n", w.Name, w.Suite, w.AccessPKI, w.RBMPKI)
		}
		return
	}

	w, err := workloads.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	geo := dram.Baseline()
	if *rowsPerBank != 0 {
		geo = dram.Scaled(uint32(*rowsPerBank))
	}
	factory, err := trackerFactory(*tr, geo, uint32(*nrh))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind, err := attack.ParseKind(*atk)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var traces = sim.BenignTraces(w, 3, geo, *seed)
	traces = append(traces, attack.MustTrace(attack.Config{Geometry: geo, NRH: uint32(*nrh), Kind: kind, Seed: *seed}))

	res, err := sim.Run(sim.Config{
		Geometry: geo,
		Traces:   traces,
		Tracker:  factory,
		Warmup:   dram.US(*warmupUS),
		Measure:  dram.US(*measureUS),
		Engine:   engine,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s tracker=%s attack=%s NRH=%d window=%.0fus\n",
		w.Name, res.TrackerNames[0], kind, *nrh, *measureUS)
	for i, ipc := range res.IPC {
		role := "benign"
		if i == 3 {
			role = "attacker"
		}
		fmt.Printf("  core %d (%s): IPC %.3f (%d instructions)\n", i, role, ipc, res.Instructions[i])
	}
	c := res.Counters
	fmt.Printf("  DRAM: ACT=%d RD=%d WR=%d REF=%d VRR=%d RFMsb=%d DRFMsb=%d bulk=%d (rows %d)\n",
		c.ACT, c.RD, c.WR, c.REF, c.VRR, c.RFMsb, c.DRFMsb, c.BulkEvents, c.BulkRows)
	fmt.Printf("  counter traffic: reads=%d writes=%d\n", c.InjRD, c.InjWR)
	ts := res.Tracker
	fmt.Printf("  tracker: activations=%d mitigations=%d victim-refreshes=%d bulk-resets=%d throttled=%d\n",
		ts.Activations, ts.Mitigations, ts.VictimRefreshes, ts.BulkResets, ts.Throttled)
	fmt.Printf("  LLC hit rate: %.3f  row hits: %d  row misses: %d\n",
		res.LLCHitRate, res.Mem.RowHits, res.Mem.RowMisses)
}
