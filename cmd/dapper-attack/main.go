// Command dapper-attack explores the security side of the paper: the
// Mapping-Capturing analysis of DAPPER-S (Table II), the DAPPER-H
// success probability (Equations 6-7), and live Monte-Carlo probes
// against both trackers.
//
// Usage:
//
//	dapper-attack                       # analytic tables + Monte-Carlo
//	dapper-attack -treset 18            # custom reset period (us)
//	dapper-attack -groups 4096 -trials 5000
package main

import (
	"flag"
	"fmt"

	"dapper/internal/analytic"
	"dapper/internal/attack"
	"dapper/internal/core"
	"dapper/internal/dram"
)

func main() {
	tresetUS := flag.Float64("treset", 0, "extra DAPPER-S reset period to analyze (us, 0 = table only)")
	groups := flag.Int("groups", 8192, "row groups per table for the DAPPER-H analysis")
	trials := flag.Int("trials", 2500, "attack trials per tREFW for the DAPPER-H analysis")
	budget := flag.Uint64("budget", 4_000_000, "Monte-Carlo activation budget")
	seed := flag.Uint64("seed", 1, "Monte-Carlo seed")
	flag.Parse()

	fmt.Println("DAPPER-S Mapping-Capturing attack (Equations 1-5, Table II)")
	fmt.Printf("  %-8s %-12s %-12s\n", "treset", "iterations", "attack time")
	rows := []float64{36, 24, 12}
	if *tresetUS > 0 {
		rows = append(rows, *tresetUS)
	}
	for _, us := range rows {
		r := analytic.AnalyzeS(analytic.DefaultSParams(us * 1000))
		fmt.Printf("  %-8s %-12.1f %.1fus\n", fmt.Sprintf("%.0fus", us), r.Iterations, r.AttackTimeNS/1000)
	}

	fmt.Println()
	h := analytic.AnalyzeH(analytic.HParams{NumGroups: *groups, Trials: *trials})
	fmt.Println("DAPPER-H Mapping-Capturing attack (Equations 6-7)")
	fmt.Printf("  groups per table:    %d\n", *groups)
	fmt.Printf("  trials per tREFW:    %d\n", *trials)
	fmt.Printf("  per-trial success:   %.3g\n", h.PerTrialProb)
	fmt.Printf("  per-tREFW success:   %.3g\n", h.SuccessProb)
	fmt.Printf("  prevention rate:     %.4f%%\n", h.Prevention*100)

	fmt.Println()
	fmt.Println("Monte-Carlo probes against live trackers (scaled 2048-row banks)")
	geo := dram.Scaled(2048)
	ds, err := core.NewDapperS(0, core.Config{Geometry: geo, NRH: 500, Seed: *seed})
	if err != nil {
		panic(err)
	}
	sRes := attack.MappingCaptureS(ds, geo, *budget)
	fmt.Printf("  DAPPER-S (static mapping): captured=%v after %d probes (%d ACTs)\n",
		sRes.Captured, sRes.Trials, sRes.ACTs)
	if sRes.Captured {
		fmt.Printf("    target %v shares a group with row %d of bank group %d\n",
			sRes.TargetLoc.Row, sRes.PartnerLoc.Row, sRes.PartnerLoc.BankGroup)
	}
	dh, err := core.NewDapperH(0, core.Config{Geometry: geo, NRH: 500, Seed: *seed})
	if err != nil {
		panic(err)
	}
	hRes := attack.MappingCaptureH(dh, geo, *seed^0xC0FFEE, *budget)
	fmt.Printf("  DAPPER-H (double hashing): captured=%v after %d trials (%d ACTs)\n",
		hRes.Captured, hRes.Trials, hRes.ACTs)
}
