// Command dapper-adversary searches the parametric attack space for
// worst-case performance attacks against one or more trackers and
// writes a per-tracker resilience report: the worst-found attack
// parameters, its benign-core slowdown versus the paper's hand-crafted
// tailored attack, and the full search trace.
//
// Usage:
//
//	dapper-adversary -tracker hydra -budget 32 -seed 1
//	dapper-adversary -tracker hydra,comet,abacus -profile quick -out reports/
//	dapper-adversary -tracker all -profile tiny -budget 8 -jobs 4
//	dapper-adversary -tracker dapper-h -mix-cores 3 -budget 16  # heterogeneous co-runners
//
// Reports are deterministic: the same -seed and -budget produce
// byte-identical adversary-<tracker>.jsonl/.csv files (no wall-clock
// in the report path). Candidate evaluations fan out over -jobs
// workers via internal/harness; -cache makes reruns and revisited
// search points free.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dapper/internal/adversary"
	"dapper/internal/diag"
	"dapper/internal/exp"
	"dapper/internal/harness"
	"dapper/internal/mix"
	"dapper/internal/rh"
	"dapper/internal/sim"
	"dapper/internal/telemetry"
	"dapper/internal/workloads"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	trackers := flag.String("tracker", "dapper-h", "comma list of tracker ids (see -list-trackers), or 'all'")
	wname := flag.String("workload", "429.mcf", "benign workload co-running with the searched attacker")
	mixCores := flag.Int("mix-cores", 0, "run against a heterogeneous benign background mix of this many cores instead of -workload copies (0 = off)")
	mixIntensive := flag.Int("mix-intensive", -1, "benign mix slots from the >=2-RBMPKI group (-1 = seeded random split)")
	nrh := flag.Uint("nrh", 0, "RowHammer threshold (0 = profile default)")
	modeName := flag.String("mode", "VRR-BR1", "mitigation mode (VRR-BR1|VRR-BR2|RFMsb|DRFMsb)")
	objectiveName := flag.String("objective", "perf", "search objective: perf (worst slowdown) or escapes (security-guarantee violations via the shadow oracle)")
	budget := flag.Int("budget", 32, "candidate evaluations per tracker")
	seed := flag.Uint64("seed", 1, "search + workload seed (same seed and budget = byte-identical reports)")
	profile := flag.String("profile", "quick", "tiny, quick or full (windows, geometry)")
	engineName := flag.String("engine", "event", "simulation engine: event or cycle")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers (<=0 = NumCPU)")
	cacheDir := flag.String("cache", "", "disk result-cache directory")
	outDir := flag.String("out", ".", "output directory for adversary-<tracker>.{jsonl,csv}")
	benchOut := flag.String("bench", "", "write a candidates/sec benchmark JSON to this path")
	attr := flag.Bool("attr", false, "collect slowdown attribution (blame columns in the report rows)")
	telemetryDir := flag.String("telemetry", "", "write harness telemetry (trace.json for Perfetto + counters.json) to this directory")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (e.g. localhost:6060)")
	listTrackers := flag.Bool("list-trackers", false, "list tracker ids and exit")
	flag.Parse()

	if *listTrackers {
		for _, id := range exp.KnownTrackers() {
			fmt.Println(id)
		}
		return
	}

	var p exp.Profile
	switch *profile {
	case "tiny":
		p = exp.Tiny()
	case "quick":
		p = exp.Quick()
	case "full":
		p = exp.Full()
	default:
		fatal(fmt.Errorf("unknown profile %q (tiny|quick|full)", *profile))
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	p.Engine = engine
	p.Seed = *seed
	p.Attribution = *attr

	mode, err := rh.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	objective, err := adversary.ParseObjective(*objectiveName)
	if err != nil {
		fatal(err)
	}
	w, err := workloads.ByName(*wname)
	if err != nil {
		fatal(err)
	}
	var bg *mix.Spec
	if *mixCores > 0 {
		sp, err := mix.Generate(mix.GenConfig{
			Cores: *mixCores, Intensive: *mixIntensive, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		bg = &sp
		fmt.Fprintf(os.Stderr, "background mix %s: %s\n", sp.ID(), sp.Label())
	}
	trackerIDs := strings.Split(*trackers, ",")
	if *trackers == "all" {
		trackerIDs = exp.KnownTrackers()
	}
	*jobs = harness.NormalizeJobs(*jobs)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	cache, err := harness.NewCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	var tracer *telemetry.Tracer
	if *telemetryDir != "" {
		tracer = telemetry.NewTracer()
	}
	blameAgg := diag.NewBlameAgg()
	pool := harness.NewPool(harness.Options{
		OnResult: blameAgg.Observe,
		Workers:  *jobs,
		Cache:    cache,
		Tracer:   tracer,
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d simulations]", done, total)
		},
	})
	if *debugAddr != "" {
		blameAgg.Publish()
		dbg, err := diag.Serve(*debugAddr, pool.Stats)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/vars\n", dbg.Addr())
	}

	//dapper:wallclock search throughput (cand/s) for the BENCH_adversary.json record
	start := time.Now()
	evals, baselines := 0, 0
	for _, id := range trackerIDs {
		rep, err := adversary.Search(adversary.Options{
			TrackerID: strings.TrimSpace(id),
			Workload:  w,
			Mix:       bg,
			NRH:       uint32(*nrh),
			Mode:      mode,
			Objective: objective,
			Profile:   p,
			Budget:    *budget,
			Seed:      *seed,
		}, pool)
		if err != nil {
			fmt.Fprintln(os.Stderr)
			fatal(err)
		}
		evals += rep.Evals
		baselines += rep.BaselineRuns
		for ext, write := range map[string]func(*os.File) error{
			".jsonl": func(f *os.File) error { return rep.WriteJSONL(f) },
			".csv":   func(f *os.File) error { return rep.WriteCSV(f) },
		} {
			path := filepath.Join(*outDir, "adversary-"+rep.Tracker+ext)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := write(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Fprint(os.Stderr, "\r\033[K")
		fmt.Println(rep.Summary())
	}
	if err := pool.Close(); err != nil {
		fatal(err)
	}
	//dapper:wallclock closes the throughput measurement started above
	elapsed := time.Since(start)
	st := pool.Stats()
	if tracer != nil {
		if err := harness.WriteTelemetry(*telemetryDir, tracer, st); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry written to %s\n", *telemetryDir)
	}
	fmt.Fprintf(os.Stderr, "%d evaluations + %d baseline submissions (%d simulated, %d cache hits) in %.1fs on %d workers; reports in %s\n",
		evals, baselines, st.Ran, st.CacheHits, elapsed.Seconds(), *jobs, *outDir)

	if *benchOut != "" {
		// Candidates counts budgeted evaluations only; baseline
		// submissions (mostly pool-deduplicated) are reported separately
		// so cand_per_sec tracks search throughput, not batch structure.
		bench := struct {
			Profile       string  `json:"profile"`
			Trackers      int     `json:"trackers"`
			Candidates    int     `json:"candidates"`
			Baselines     int     `json:"baseline_submissions"`
			Seconds       float64 `json:"seconds"`
			CandPerSec    float64 `json:"cand_per_sec"`
			Workers       int     `json:"workers"`
			SimulatedRuns int     `json:"simulated_runs"`
			CacheHits     int     `json:"cache_hits"`
			Timestamp     string  `json:"timestamp"`
		}{
			Profile: p.Name, Trackers: len(trackerIDs), Candidates: evals,
			Baselines: baselines,
			Seconds:   elapsed.Seconds(), CandPerSec: float64(evals) / elapsed.Seconds(),
			Workers: *jobs, SimulatedRuns: st.Ran, CacheHits: st.CacheHits,
			//dapper:wallclock benchmark records are timestamped provenance, never cache-keyed
			Timestamp: time.Now().UTC().Format(time.RFC3339),
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
	}
}
