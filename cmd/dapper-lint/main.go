// Command dapper-lint runs the project's static-contract analyzers
// (internal/analysis: nodeterm, maporder, descriptorsync, hotpath)
// over Go packages. It has two personalities:
//
//   - standalone multichecker (what `make lint` uses):
//     dapper-lint [packages...]        # default ./...
//
//   - `go vet` tool, speaking cmd/go's unit-checker protocol:
//     go vet -vettool=$(pwd)/bin/dapper-lint ./...
//
// The vettool mode is detected by the single *.cfg argument cmd/go
// passes per package (plus the -V=full identification handshake).
// Exit status: 0 clean, 1 usage/internal error, 2 findings.
package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dapper/internal/analysis"
	"dapper/internal/analysis/load"
)

func main() {
	args := os.Args[1:]
	// cmd/go probes vet tools before first use: -V=full identifies the
	// tool for build caching, -flags asks which analyzer flags it
	// accepts (none here — JSON empty list).
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Println("dapper-lint version devel-1")
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	total := 0
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			fmt.Fprintf(os.Stderr, "dapper-lint: %s does not type-check: %v\n", pkg.PkgPath, pkg.TypeErrors[0])
			return 1
		}
		for _, a := range analysis.All() {
			findings, err := analysis.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.PkgPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dapper-lint: %s: %s: %v\n", a.Name, pkg.PkgPath, err)
				return 1
			}
			for _, f := range findings {
				fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
				total++
			}
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "dapper-lint: %d finding(s)\n", total)
		return 2
	}
	return 0
}

// vetConfig is the JSON cmd/go writes for each package when driving a
// -vettool (the unit-checker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dapper-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// This suite exchanges no facts between packages, but cmd/go
	// requires the .vetx output to exist to cache the run.
	defer writeVetx(cfg.VetxOutput)
	if cfg.VetxOnly {
		return 0
	}

	// The contracts bind production code only; test files (and test
	// variants of packages, which cmd/go vets separately) are exempt.
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: imp}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "dapper-lint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// cmd/go vets test variants under paths like "p [p.test]"; map them
	// back to the base path so the tier table matches.
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}

	total := 0
	for _, a := range analysis.All() {
		findings, err := analysis.RunAnalyzer(a, fset, files, pkg, info, pkgPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dapper-lint: %s: %v\n", a.Name, err)
			return 1
		}
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", relPos(f.Pos, cfg.Dir), f.Analyzer, f.Message)
			total++
		}
	}
	if total > 0 {
		return 2
	}
	return 0
}

func relPos(pos token.Position, dir string) string {
	if dir != "" {
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return pos.String()
}

// writeVetx emits an empty (but valid) facts file.
func writeVetx(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	gob.NewEncoder(f).Encode([]string{})
}
