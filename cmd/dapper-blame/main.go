// Command dapper-blame answers "why is it slow?": it runs one (or,
// with -tracker all, every) attribution-enabled simulation and renders
// the per-core CPI stacks, the memory-wait blame breakdown and the
// core→core interference blame matrix as deterministic JSONL/CSV plus
// a human-readable ASCII view.
//
// Usage:
//
//	dapper-blame -tracker dapper-h -attack hammer -nrh 125
//	dapper-blame -tracker all -attack hammer -check -out blame/
//	dapper-blame -tracker none -attack none -format ascii
//
// -check turns the attribution contracts into an exit code: the
// Attribution must validate (CPI stacks partition cycles exactly,
// blame buckets sum to each core's wait total, the matrix stays within
// its row bounds), the windowed blame series must fold back to the
// grand totals, and a replay on the other engine must produce a
// byte-identical Attribution and Series.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dapper/internal/attack"
	"dapper/internal/dram"
	"dapper/internal/exp"
	"dapper/internal/rh"
	"dapper/internal/sim"
	"dapper/internal/telemetry"
	"dapper/internal/workloads"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func runOnce(engine sim.Engine, geo dram.Geometry, factory sim.TrackerFactory,
	w workloads.Workload, pt exp.AttackPoint, nrh uint32,
	warmup, measure, window dram.Cycle, seed uint64) (sim.Result, error) {
	traces := sim.BenignTraces(w, 3, geo, seed)
	if pt.Kind == attack.None {
		traces = sim.BenignTraces(w, 4, geo, seed)
	} else {
		traces = append(traces, attack.MustTrace(attack.Config{
			Geometry: geo, NRH: nrh, Kind: pt.Kind, Params: pt.Params, Seed: seed,
		}))
	}
	return sim.Run(sim.Config{
		Geometry:        geo,
		Traces:          traces,
		Tracker:         factory,
		Warmup:          warmup,
		Measure:         measure,
		Engine:          engine,
		TelemetryWindow: window,
		Attribution:     true,
	})
}

// coreLabels names the cores for the ASCII view: benign workload copies
// plus the attacker slot.
func coreLabels(w workloads.Workload, attackName string, n int) []string {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = w.Name
	}
	if attackName != "none" {
		labels[n-1] = "!" + attackName
	}
	return labels
}

func main() {
	wl := flag.String("workload", "429.mcf", "benign workload name")
	tr := flag.String("tracker", "dapper-h", "tracker id (see dapper-batch -list-trackers), 'none', or 'all'")
	atk := flag.String("attack", "hammer", "attack on the 4th core: 'hammer' (focused parametric), a hand-written kind, or 'none' (four benign copies)")
	nrh := flag.Uint("nrh", 125, "RowHammer threshold")
	modeName := flag.String("mode", "VRR-BR1", "mitigation mode (VRR-BR1|VRR-BR2|RFMsb|DRFMsb)")
	windowUS := flag.Float64("window", 10, "telemetry window in microseconds (0 = whole-run stacks only)")
	measureUS := flag.Float64("measure", 400, "measurement window in microseconds")
	warmupUS := flag.Float64("warmup", 100, "warmup window in microseconds")
	rowsPerBank := flag.Uint("rows-per-bank", 0, "override rows per bank (0 = full 64K)")
	seed := flag.Uint64("seed", 1, "workload + attack trace seed")
	engineName := flag.String("engine", "event", "simulation engine: event or cycle")
	outDir := flag.String("out", ".", "output directory for blame-<tracker>.{jsonl,csv,txt} + blame-matrix-<tracker>.csv")
	format := flag.String("format", "all", "output format: jsonl, csv, ascii or all")
	check := flag.Bool("check", false, "verify attribution conservation and cross-engine byte equality; non-zero exit on failure")
	flag.Parse()

	switch *format {
	case "jsonl", "csv", "ascii", "all":
	default:
		fatal(fmt.Errorf("unknown -format %q (jsonl|csv|ascii|all)", *format))
	}
	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}
	pt, attackName := exp.AttackPoint{Kind: attack.None}, "none"
	if *atk != "none" {
		sa, err := exp.ParseAuditAttack(*atk)
		if err != nil {
			fatal(err)
		}
		pt, attackName = sa.Point, sa.Name
	}
	mode, err := rh.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	geo := dram.Baseline()
	if *rowsPerBank != 0 {
		geo = dram.Scaled(uint32(*rowsPerBank))
	}
	trackerIDs := []string{*tr}
	if *tr == "all" {
		trackerIDs = exp.KnownTrackers()
	}
	warmup, measure, window := dram.US(*warmupUS), dram.US(*measureUS), dram.US(*windowUS)
	if *windowUS < 0 {
		fatal(fmt.Errorf("-window must be non-negative (microseconds)"))
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	for _, id := range trackerIDs {
		factory, err := exp.TrackerFactory(id, geo, uint32(*nrh), mode)
		if err != nil {
			fatal(err)
		}
		res, err := runOnce(engine, geo, factory, w, pt, uint32(*nrh), warmup, measure, window, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		a := res.Attribution
		if a == nil {
			fatal(fmt.Errorf("%s: run produced no attribution (Config.Attribution not plumbed?)", id))
		}

		if *check {
			// Validate re-checks the internal conservation (the exact
			// cycle-count and TotalReadWait gates already ran inside
			// sim.Run and fail the run on mismatch); CheckSeries folds the
			// windowed blame back onto the grand totals.
			if err := a.Validate(); err != nil {
				fatal(fmt.Errorf("%s: attribution invariants: %w", id, err))
			}
			if s := res.Series; s != nil {
				if err := a.CheckSeries(s); err != nil {
					fatal(fmt.Errorf("%s: windowed blame: %w", id, err))
				}
			}
			other := sim.EngineCycle
			if engine.OrDefault() == sim.EngineCycle {
				other = sim.EngineEvent
			}
			res2, err := runOnce(other, geo, factory, w, pt, uint32(*nrh), warmup, measure, window, *seed)
			if err != nil {
				fatal(fmt.Errorf("%s: %s replay: %w", id, other, err))
			}
			for _, pair := range []struct {
				what string
				x, y any
			}{
				{"attribution", a, res2.Attribution},
				{"series", res.Series, res2.Series},
			} {
				xb, err := json.Marshal(pair.x)
				if err != nil {
					fatal(err)
				}
				yb, err := json.Marshal(pair.y)
				if err != nil {
					fatal(err)
				}
				if !bytes.Equal(xb, yb) {
					fatal(fmt.Errorf("%s: engines diverge: %s and %s %s are not byte-identical",
						id, engine.OrDefault(), other, pair.what))
				}
			}
		}

		write := func(name string, fn func(f *os.File) error) {
			path := filepath.Join(*outDir, name)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := fn(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *format == "jsonl" || *format == "all" {
			write("blame-"+id+".jsonl", func(f *os.File) error { return telemetry.WriteBlameJSONL(f, a, res.Series) })
		}
		if *format == "csv" || *format == "all" {
			write("blame-"+id+".csv", func(f *os.File) error { return telemetry.WriteBlameCSV(f, a) })
			write("blame-matrix-"+id+".csv", func(f *os.File) error { return telemetry.WriteBlameMatrixCSV(f, a) })
		}
		if *format == "ascii" || *format == "all" {
			write("blame-"+id+".txt", func(f *os.File) error {
				return telemetry.RenderBlameASCII(f, a, coreLabels(w, attackName, len(a.Cores)))
			})
		}
		verdict := ""
		if *check {
			verdict = " [check passed: conserved + engine byte-identical]"
		}
		var benignWait, blameMit, blameInj uint64
		for _, c := range sim.BenignCores(len(a.Cores)) {
			m := a.Cores[c].Mem
			benignWait += m.Total
			blameMit += m.Mitigation
			blameInj += m.Inject
		}
		fmt.Printf("%-12s attack=%s NRH=%d: benign wait %d (mitigation %d, inject %d)%s\n",
			res.TrackerNames[0], attackName, *nrh, benignWait, blameMit, blameInj, verdict)
	}
}
