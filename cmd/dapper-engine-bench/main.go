// Command dapper-engine-bench times one figure under both simulation
// engines (the per-cycle reference loop and the event-driven time-skip
// loop) and writes the comparison to a JSON file, so the repository's
// performance trajectory is tracked alongside its results
// (`make bench-compare`).
//
// Usage:
//
//	dapper-engine-bench                     # fig11, BENCH_engine.json
//	dapper-engine-bench -exp fig1 -out engines.json
//	dapper-engine-bench -check              # gate vs the recorded baseline
//
// The output file is an append-only trajectory: a JSON array of
// timestamped reports, one per recording run, so the repository
// carries its own performance history (a legacy single-object file is
// read as a one-point trajectory). Alongside the engine comparison,
// each report times the batched sweep runner (exp.BatchedSweep) on an
// 8-point NRH sweep against the same sweep run as independent
// event-engine simulations, verifying the batched results are
// byte-identical before trusting the timing.
//
// -check compares the fresh measurement against the LAST recorded
// trajectory point in -out instead of appending, and exits non-zero if
// the event-over-cycle speedup ratio regressed by more than 10%, if
// the batched-runner speedup regressed by more than 10%, or — the
// tighter gate — if the normalized event-engine time (the inverse of
// the engine ratio) grew by more than 2%. The ratios — not wall-clock
// seconds — are the gated quantities, so the checks are meaningful on
// machines faster or slower than the one that recorded the baseline,
// and each measurement is timed -repeat times with the best kept, so
// scheduler noise does not trip the 2% band. All benchmarked runs are
// telemetry-off and attribution-off, so the 2% gate is the
// attribution-off overhead budget: the nil-probe checks the
// attribution layer (like telemetry before it) leaves on the hot paths
// must stay under 2% of event-engine time. The attribution-ON cost is
// also measured and recorded (attr_event_seconds / attr_overhead) as
// trajectory data, ungated.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"flag"

	"dapper/internal/attack"
	"dapper/internal/exp"
	"dapper/internal/harness"
	"dapper/internal/rh"
	"dapper/internal/sim"
)

// report is the BENCH_engine.json schema.
type report struct {
	Experiment   string  `json:"experiment"`
	Profile      string  `json:"profile"`
	CycleSeconds float64 `json:"cycle_seconds"`
	EventSeconds float64 `json:"event_seconds"`
	Speedup      float64 `json:"speedup"`
	// AttrEventSeconds times the event engine with attribution ON and
	// AttrOverhead is its fractional cost over the attribution-off run
	// — trajectory data, not gated (the gated quantity is the
	// attribution-OFF overhead hiding in EventSeconds).
	AttrEventSeconds float64 `json:"attr_event_seconds,omitempty"`
	AttrOverhead     float64 `json:"attr_overhead,omitempty"`
	// Batched-runner throughput: the same NRH sweep timed as serial
	// independent event-engine runs vs one exp.BatchedSweep pass.
	// BatchSpeedup = BatchIndepSeconds / BatchSeconds; LockstepPoints
	// counts how many of BatchPoints replayed against the lead's
	// recorded stream instead of running a full simulation.
	BatchPoints       int     `json:"batch_points,omitempty"`
	LockstepPoints    int     `json:"lockstep_points,omitempty"`
	BatchIndepSeconds float64 `json:"batch_indep_seconds,omitempty"`
	BatchSeconds      float64 `json:"batch_seconds,omitempty"`
	BatchSpeedup      float64 `json:"batch_speedup,omitempty"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Timestamp         string  `json:"timestamp"`
}

// loadTrajectory reads the append-only report history at path. A
// legacy single-object file becomes a one-point trajectory.
func loadTrajectory(path string) ([]report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var traj []report
	if err := json.Unmarshal(raw, &traj); err == nil {
		return traj, nil
	}
	var one report
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, fmt.Errorf("%s is neither a report array nor a single report: %w", path, err)
	}
	return []report{one}, nil
}

// benchProfile is the shared bench profile (exp.Bench, the same one
// bench_test.go's figure benchmarks run) pinned to one engine.
func benchProfile(engine sim.Engine, attr bool) exp.Profile {
	p := exp.Bench()
	p.Engine = engine
	p.Attribution = attr
	return p
}

// timeRun times the experiment repeat times and returns the fastest
// run: best-of-N is the standard way to keep scheduler noise out of a
// percent-level gate.
func timeRun(id string, engine sim.Engine, attr bool, repeat int) (float64, error) {
	g, err := exp.Lookup(id)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for i := 0; i < repeat; i++ {
		//dapper:wallclock this command's purpose is timing the two engines against each other
		start := time.Now()
		tb, err := g(benchProfile(engine, attr))
		if err != nil {
			return 0, err
		}
		if len(tb.Rows) == 0 {
			return 0, fmt.Errorf("%s produced no rows under %s engine", id, engine)
		}
		//dapper:wallclock closes the engine timing above
		if s := time.Since(start).Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best, nil
}

// batchSweepRequest is the batched-runner benchmark: one tracker
// (DAPPER-H, the paper's subject) across an 8-point NRH sweep of one
// bench workload under benign load. All points share one trace stream,
// so the batched runner decodes once, runs the lead fully, and replays
// the rest in lockstep; the independent path simulates all 8.
func batchSweepRequest() exp.BatchRequest {
	p := benchProfile(sim.EngineEvent, false)
	return exp.BatchRequest{
		Trackers:  []string{"dapper-h"},
		Workloads: p.Workloads[:1],
		NRHs:      []uint32{500, 1000, 2000, 4000, 8000, 16000, 32000, 64000},
		Attack:    attack.None,
		Mode:      rh.VRR1,
		Profile:   p,
	}
}

// timeBatch times the sweep both ways (best of repeat, with at least
// five samples per side — the passes are sub-second, so GC pauses and
// scheduler noise need more samples to fall out of a best-of minimum
// than the whole-figure engine timings do), verifies the batched
// results are byte-identical to the independent ones, and returns the
// two timings plus the point/lockstep counts.
func timeBatch(repeat int) (indepS, batchS float64, points, lockstep int, err error) {
	if repeat < 5 {
		repeat = 5
	}
	req := batchSweepRequest()
	jobs, err := req.Jobs()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	indep := make([]sim.Result, len(jobs))
	for i := 0; i < repeat; i++ {
		runtime.GC() // keep earlier passes' garbage out of this timing
		//dapper:wallclock this command's purpose is timing the batched runner against independent runs
		start := time.Now()
		for j, job := range jobs {
			res, runErr := job.Run()
			if runErr != nil {
				return 0, 0, 0, 0, runErr
			}
			indep[j] = res
		}
		//dapper:wallclock closes the independent-sweep timing above
		if s := time.Since(start).Seconds(); i == 0 || s < indepS {
			indepS = s
		}
	}

	var records []harness.Record
	var stats exp.BatchStats
	for i := 0; i < repeat; i++ {
		runtime.GC() // keep earlier passes' garbage out of this timing
		//dapper:wallclock times the batched sweep pass
		start := time.Now()
		records, stats, err = exp.BatchedSweep(req, harness.Options{Workers: 1})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		//dapper:wallclock closes the batched-sweep timing above
		if s := time.Since(start).Seconds(); i == 0 || s < batchS {
			batchS = s
		}
	}

	if len(records) != len(indep) {
		return 0, 0, 0, 0, fmt.Errorf("batched sweep produced %d records for %d jobs", len(records), len(indep))
	}
	for i := range records {
		want, err := json.Marshal(indep[i])
		if err != nil {
			return 0, 0, 0, 0, err
		}
		got, err := json.Marshal(records[i].Result)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if !bytes.Equal(want, got) {
			return 0, 0, 0, 0, fmt.Errorf("batched result %s diverges from independent run; timing would be meaningless", records[i].Desc.String())
		}
	}
	return indepS, batchS, stats.Points, stats.Lockstep, nil
}

func main() {
	expID := flag.String("exp", "fig11", "experiment id to benchmark")
	out := flag.String("out", "BENCH_engine.json", "output JSON path (with -check: the baseline to gate against)")
	repeat := flag.Int("repeat", 3, "timings per engine; the best is kept")
	attrBudget := flag.Float64("attr-budget", 0.02, "with -check: allowed growth of normalized event-engine time vs baseline (the attribution-off overhead budget)")
	check := flag.Bool("check", false, "compare against the -out baseline instead of rewriting it; exit non-zero on >10% speedup-ratio regression or >-attr-budget attribution-off overhead")
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	fmt.Fprintf(os.Stderr, "benchmarking %s: cycle engine...\n", *expID)
	cycleS, err := timeRun(*expID, sim.EngineCycle, false, *repeat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmarking %s: event engine...\n", *expID)
	eventS, err := timeRun(*expID, sim.EngineEvent, false, *repeat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmarking %s: event engine, attribution on...\n", *expID)
	attrS, err := timeRun(*expID, sim.EngineEvent, true, *repeat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmarking batched sweep runner (8-point NRH sweep)...\n")
	indepS, batchS, points, lockstep, err := timeBatch(*repeat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	r := report{
		Experiment:        *expID,
		Profile:           "bench",
		CycleSeconds:      cycleS,
		EventSeconds:      eventS,
		Speedup:           cycleS / eventS,
		AttrEventSeconds:  attrS,
		AttrOverhead:      attrS/eventS - 1,
		BatchPoints:       points,
		LockstepPoints:    lockstep,
		BatchIndepSeconds: indepS,
		BatchSeconds:      batchS,
		BatchSpeedup:      indepS / batchS,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		//dapper:wallclock benchmark records are timestamped provenance, never cache-keyed
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	if *check {
		traj, err := loadTrajectory(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "no baseline to check against: %v\n", err)
			os.Exit(1)
		}
		if len(traj) == 0 {
			fmt.Fprintf(os.Stderr, "empty trajectory in %s; record a baseline first\n", *out)
			os.Exit(1)
		}
		base := traj[len(traj)-1]
		fmt.Printf("%s: engine speedup %.2fx now vs %.2fx baseline, batch speedup %.2fx now vs %.2fx baseline (%s)\n",
			*expID, r.Speedup, base.Speedup, r.BatchSpeedup, base.BatchSpeedup, base.Timestamp)
		if base.Speedup <= 0 {
			fmt.Fprintf(os.Stderr, "baseline speedup %g is not positive; re-record it\n", base.Speedup)
			os.Exit(1)
		}
		if r.Speedup < 0.9*base.Speedup {
			fmt.Fprintf(os.Stderr, "check FAILED: speedup regressed >10%% (%.2fx -> %.2fx); the event engine lost its advantage\n",
				base.Speedup, r.Speedup)
			os.Exit(1)
		}
		// The attribution-off overhead gate: all benchmarked runs keep
		// attribution off, so any growth in normalized event-engine
		// time (cycle-time units, hence machine-portable) is nil-probe
		// cost left on the hot paths.
		if overhead := base.Speedup/r.Speedup - 1; overhead > *attrBudget {
			fmt.Fprintf(os.Stderr, "check FAILED: attribution-off event-engine overhead %.1f%% exceeds the %.1f%% budget (normalized time %.4f -> %.4f)\n",
				100*overhead, 100**attrBudget, 1/base.Speedup, 1/r.Speedup)
			os.Exit(1)
		}
		// The batched-runner gate activates once the trajectory has a
		// recorded batch point (legacy baselines predate it).
		if base.BatchSpeedup > 0 && r.BatchSpeedup < 0.9*base.BatchSpeedup {
			fmt.Fprintf(os.Stderr, "check FAILED: batched-runner speedup regressed >10%% (%.2fx -> %.2fx) on the %d-point sweep\n",
				base.BatchSpeedup, r.BatchSpeedup, points)
			os.Exit(1)
		}
		fmt.Printf("check passed: engine speedup within 10%% of baseline, attribution-off overhead within %.1f%% (attr-on costs %.1f%%), batch speedup %.2fx (%d/%d lockstep)\n",
			100**attrBudget, 100*r.AttrOverhead, r.BatchSpeedup, lockstep, points)
		return
	}

	traj, err := loadTrajectory(*out)
	if err != nil && !os.IsNotExist(err) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	traj = append(traj, r)
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: cycle %.2fs, event %.2fs, speedup %.2fx, attr-on +%.1f%%, batch %.2fx (%d/%d lockstep, %.2fs -> %.2fs) -> %s (%d points)\n",
		*expID, cycleS, eventS, r.Speedup, 100*r.AttrOverhead,
		r.BatchSpeedup, lockstep, points, indepS, batchS, *out, len(traj))
}
