// Command dapper-engine-bench times one figure under both simulation
// engines (the per-cycle reference loop and the event-driven time-skip
// loop) and writes the comparison to a JSON file, so the repository's
// performance trajectory is tracked alongside its results
// (`make bench-compare`).
//
// Usage:
//
//	dapper-engine-bench                     # fig11, BENCH_engine.json
//	dapper-engine-bench -exp fig1 -out engines.json
//	dapper-engine-bench -check              # gate vs the recorded baseline
//
// -check compares the fresh measurement against the committed baseline
// in -out instead of rewriting it, and exits non-zero if the
// event-over-cycle speedup ratio regressed by more than 10%. The ratio
// — not wall-clock seconds — is the gated quantity, so the check is
// meaningful on machines faster or slower than the one that recorded
// the baseline. All benchmarked runs are telemetry-off, so this also
// gates the cost of the telemetry nil-checks on the hot paths.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"flag"

	"dapper/internal/exp"
	"dapper/internal/sim"
)

// report is the BENCH_engine.json schema.
type report struct {
	Experiment   string  `json:"experiment"`
	Profile      string  `json:"profile"`
	CycleSeconds float64 `json:"cycle_seconds"`
	EventSeconds float64 `json:"event_seconds"`
	Speedup      float64 `json:"speedup"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Timestamp    string  `json:"timestamp"`
}

// benchProfile is the shared bench profile (exp.Bench, the same one
// bench_test.go's figure benchmarks run) pinned to one engine.
func benchProfile(engine sim.Engine) exp.Profile {
	p := exp.Bench()
	p.Engine = engine
	return p
}

func timeRun(id string, engine sim.Engine) (float64, error) {
	g, err := exp.Lookup(id)
	if err != nil {
		return 0, err
	}
	//dapper:wallclock this command's purpose is timing the two engines against each other
	start := time.Now()
	tb, err := g(benchProfile(engine))
	if err != nil {
		return 0, err
	}
	if len(tb.Rows) == 0 {
		return 0, fmt.Errorf("%s produced no rows under %s engine", id, engine)
	}
	//dapper:wallclock closes the engine timing above
	return time.Since(start).Seconds(), nil
}

func main() {
	expID := flag.String("exp", "fig11", "experiment id to benchmark")
	out := flag.String("out", "BENCH_engine.json", "output JSON path (with -check: the baseline to gate against)")
	check := flag.Bool("check", false, "compare against the -out baseline instead of rewriting it; exit non-zero on >10% speedup-ratio regression")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "benchmarking %s: cycle engine...\n", *expID)
	cycleS, err := timeRun(*expID, sim.EngineCycle)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmarking %s: event engine...\n", *expID)
	eventS, err := timeRun(*expID, sim.EngineEvent)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	r := report{
		Experiment:   *expID,
		Profile:      "bench",
		CycleSeconds: cycleS,
		EventSeconds: eventS,
		Speedup:      cycleS / eventS,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		//dapper:wallclock benchmark records are timestamped provenance, never cache-keyed
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	if *check {
		raw, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "no baseline to check against: %v\n", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bad baseline %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("%s: speedup %.2fx now vs %.2fx baseline (%s)\n",
			*expID, r.Speedup, base.Speedup, base.Timestamp)
		if base.Speedup <= 0 {
			fmt.Fprintf(os.Stderr, "baseline speedup %g is not positive; re-record it\n", base.Speedup)
			os.Exit(1)
		}
		if r.Speedup < 0.9*base.Speedup {
			fmt.Fprintf(os.Stderr, "check FAILED: speedup regressed >10%% (%.2fx -> %.2fx); the event engine lost its advantage\n",
				base.Speedup, r.Speedup)
			os.Exit(1)
		}
		fmt.Println("check passed: engine speedup within 10% of baseline")
		return
	}

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: cycle %.2fs, event %.2fs, speedup %.2fx -> %s\n",
		*expID, cycleS, eventS, r.Speedup, *out)
}
