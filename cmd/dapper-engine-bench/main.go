// Command dapper-engine-bench times one figure under both simulation
// engines (the per-cycle reference loop and the event-driven time-skip
// loop) and writes the comparison to a JSON file, so the repository's
// performance trajectory is tracked alongside its results
// (`make bench-compare`).
//
// Usage:
//
//	dapper-engine-bench                     # fig11, BENCH_engine.json
//	dapper-engine-bench -exp fig1 -out engines.json
//	dapper-engine-bench -check              # gate vs the recorded baseline
//
// -check compares the fresh measurement against the committed baseline
// in -out instead of rewriting it, and exits non-zero if the
// event-over-cycle speedup ratio regressed by more than 10%, or — the
// tighter gate — if the normalized event-engine time (the inverse of
// that ratio) grew by more than 2%. The ratio — not wall-clock seconds
// — is the gated quantity, so both checks are meaningful on machines
// faster or slower than the one that recorded the baseline, and each
// engine is timed -repeat times with the best kept, so scheduler noise
// does not trip the 2% band. All benchmarked runs are telemetry-off
// and attribution-off, so the 2% gate is the attribution-off overhead
// budget: the nil-probe checks the attribution layer (like telemetry
// before it) leaves on the hot paths must stay under 2% of event-engine
// time. The attribution-ON cost is also measured and recorded
// (attr_event_seconds / attr_overhead) as trajectory data, ungated.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"flag"

	"dapper/internal/exp"
	"dapper/internal/sim"
)

// report is the BENCH_engine.json schema.
type report struct {
	Experiment   string  `json:"experiment"`
	Profile      string  `json:"profile"`
	CycleSeconds float64 `json:"cycle_seconds"`
	EventSeconds float64 `json:"event_seconds"`
	Speedup      float64 `json:"speedup"`
	// AttrEventSeconds times the event engine with attribution ON and
	// AttrOverhead is its fractional cost over the attribution-off run
	// — trajectory data, not gated (the gated quantity is the
	// attribution-OFF overhead hiding in EventSeconds).
	AttrEventSeconds float64 `json:"attr_event_seconds,omitempty"`
	AttrOverhead     float64 `json:"attr_overhead,omitempty"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Timestamp        string  `json:"timestamp"`
}

// benchProfile is the shared bench profile (exp.Bench, the same one
// bench_test.go's figure benchmarks run) pinned to one engine.
func benchProfile(engine sim.Engine, attr bool) exp.Profile {
	p := exp.Bench()
	p.Engine = engine
	p.Attribution = attr
	return p
}

// timeRun times the experiment repeat times and returns the fastest
// run: best-of-N is the standard way to keep scheduler noise out of a
// percent-level gate.
func timeRun(id string, engine sim.Engine, attr bool, repeat int) (float64, error) {
	g, err := exp.Lookup(id)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for i := 0; i < repeat; i++ {
		//dapper:wallclock this command's purpose is timing the two engines against each other
		start := time.Now()
		tb, err := g(benchProfile(engine, attr))
		if err != nil {
			return 0, err
		}
		if len(tb.Rows) == 0 {
			return 0, fmt.Errorf("%s produced no rows under %s engine", id, engine)
		}
		//dapper:wallclock closes the engine timing above
		if s := time.Since(start).Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best, nil
}

func main() {
	expID := flag.String("exp", "fig11", "experiment id to benchmark")
	out := flag.String("out", "BENCH_engine.json", "output JSON path (with -check: the baseline to gate against)")
	repeat := flag.Int("repeat", 3, "timings per engine; the best is kept")
	attrBudget := flag.Float64("attr-budget", 0.02, "with -check: allowed growth of normalized event-engine time vs baseline (the attribution-off overhead budget)")
	check := flag.Bool("check", false, "compare against the -out baseline instead of rewriting it; exit non-zero on >10% speedup-ratio regression or >-attr-budget attribution-off overhead")
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	fmt.Fprintf(os.Stderr, "benchmarking %s: cycle engine...\n", *expID)
	cycleS, err := timeRun(*expID, sim.EngineCycle, false, *repeat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmarking %s: event engine...\n", *expID)
	eventS, err := timeRun(*expID, sim.EngineEvent, false, *repeat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmarking %s: event engine, attribution on...\n", *expID)
	attrS, err := timeRun(*expID, sim.EngineEvent, true, *repeat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	r := report{
		Experiment:       *expID,
		Profile:          "bench",
		CycleSeconds:     cycleS,
		EventSeconds:     eventS,
		Speedup:          cycleS / eventS,
		AttrEventSeconds: attrS,
		AttrOverhead:     attrS/eventS - 1,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		//dapper:wallclock benchmark records are timestamped provenance, never cache-keyed
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	if *check {
		raw, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "no baseline to check against: %v\n", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bad baseline %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("%s: speedup %.2fx now vs %.2fx baseline (%s)\n",
			*expID, r.Speedup, base.Speedup, base.Timestamp)
		if base.Speedup <= 0 {
			fmt.Fprintf(os.Stderr, "baseline speedup %g is not positive; re-record it\n", base.Speedup)
			os.Exit(1)
		}
		if r.Speedup < 0.9*base.Speedup {
			fmt.Fprintf(os.Stderr, "check FAILED: speedup regressed >10%% (%.2fx -> %.2fx); the event engine lost its advantage\n",
				base.Speedup, r.Speedup)
			os.Exit(1)
		}
		// The attribution-off overhead gate: all benchmarked runs keep
		// attribution off, so any growth in normalized event-engine
		// time (cycle-time units, hence machine-portable) is nil-probe
		// cost left on the hot paths.
		if overhead := base.Speedup/r.Speedup - 1; overhead > *attrBudget {
			fmt.Fprintf(os.Stderr, "check FAILED: attribution-off event-engine overhead %.1f%% exceeds the %.1f%% budget (normalized time %.4f -> %.4f)\n",
				100*overhead, 100**attrBudget, 1/base.Speedup, 1/r.Speedup)
			os.Exit(1)
		}
		fmt.Printf("check passed: speedup within 10%% of baseline, attribution-off overhead within %.1f%% (attr-on costs %.1f%%)\n",
			100**attrBudget, 100*r.AttrOverhead)
		return
	}

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: cycle %.2fs, event %.2fs, speedup %.2fx, attr-on +%.1f%% -> %s\n",
		*expID, cycleS, eventS, r.Speedup, 100*r.AttrOverhead, *out)
}
