// Command dapper-engine-bench times one figure under both simulation
// engines (the per-cycle reference loop and the event-driven time-skip
// loop) and writes the comparison to a JSON file, so the repository's
// performance trajectory is tracked alongside its results
// (`make bench-compare`).
//
// Usage:
//
//	dapper-engine-bench                     # fig11, BENCH_engine.json
//	dapper-engine-bench -exp fig1 -out engines.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"flag"

	"dapper/internal/exp"
	"dapper/internal/sim"
)

// report is the BENCH_engine.json schema.
type report struct {
	Experiment   string  `json:"experiment"`
	Profile      string  `json:"profile"`
	CycleSeconds float64 `json:"cycle_seconds"`
	EventSeconds float64 `json:"event_seconds"`
	Speedup      float64 `json:"speedup"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Timestamp    string  `json:"timestamp"`
}

// benchProfile is the shared bench profile (exp.Bench, the same one
// bench_test.go's figure benchmarks run) pinned to one engine.
func benchProfile(engine sim.Engine) exp.Profile {
	p := exp.Bench()
	p.Engine = engine
	return p
}

func timeRun(id string, engine sim.Engine) (float64, error) {
	g, err := exp.Lookup(id)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	tb, err := g(benchProfile(engine))
	if err != nil {
		return 0, err
	}
	if len(tb.Rows) == 0 {
		return 0, fmt.Errorf("%s produced no rows under %s engine", id, engine)
	}
	return time.Since(start).Seconds(), nil
}

func main() {
	expID := flag.String("exp", "fig11", "experiment id to benchmark")
	out := flag.String("out", "BENCH_engine.json", "output JSON path")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "benchmarking %s: cycle engine...\n", *expID)
	cycleS, err := timeRun(*expID, sim.EngineCycle)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmarking %s: event engine...\n", *expID)
	eventS, err := timeRun(*expID, sim.EngineEvent)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	r := report{
		Experiment:   *expID,
		Profile:      "bench",
		CycleSeconds: cycleS,
		EventSeconds: eventS,
		Speedup:      cycleS / eventS,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: cycle %.2fs, event %.2fs, speedup %.2fx -> %s\n",
		*expID, cycleS, eventS, r.Speedup, *out)
}
