// Command dapper-audit runs the shadow security oracle over a tracker x
// attack x mode x NRH conformance sweep and writes the resulting matrix
// as deterministic JSONL/CSV: one row per cell with the oracle verdict
// (escapes, escaped rows, max observed count, margin) next to the
// headline activity counters.
//
// Usage:
//
//	dapper-audit -profile tiny -tracker all -nrh 125 -check
//	dapper-audit -tracker hydra,dapper-h -attack hammer,refresh -mode vrr-br1,rfmsb
//	dapper-audit -profile quick -engine cycle -out audit/
//
// The matrix carries no engine tag and no wall-clock: rerunning with
// the same flags — or with the other -engine — must produce
// byte-identical files, which doubles as an end-to-end equivalence
// check on the event-driven engine. -check turns the conformance
// expectation into an exit code: the insecure baseline ("none") must
// show escapes under the tailored attacks while every real tracker
// shows zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"dapper/internal/diag"
	"dapper/internal/exp"
	"dapper/internal/harness"
	"dapper/internal/rh"
	"dapper/internal/secaudit"
	"dapper/internal/sim"
	"dapper/internal/telemetry"
	"dapper/internal/workloads"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	trackers := flag.String("tracker", "all", "comma list of tracker ids (see -list-trackers), or 'all'")
	attacks := flag.String("attack", "hammer,refresh,streaming", "comma list of attack columns (hand-written kinds or 'hammer')")
	modes := flag.String("mode", "vrr-br1,rfmsb", "comma list of mitigation modes")
	nrhs := flag.String("nrh", "125", "comma list of RowHammer thresholds")
	wname := flag.String("workload", "429.mcf", "benign workload co-running with the attacker")
	profile := flag.String("profile", "tiny", "tiny, quick or full (windows, geometry)")
	seed := flag.Uint64("seed", 1, "workload/attack seed")
	engineName := flag.String("engine", "event", "simulation engine: event or cycle")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers (<=0 = NumCPU)")
	cacheDir := flag.String("cache", "", "disk result-cache directory")
	outDir := flag.String("out", ".", "output directory for audit-matrix.{jsonl,csv}")
	countInjected := flag.Bool("count-injected", false, "charge tracker counter traffic in the oracle ledger")
	attr := flag.Bool("attr", false, "collect slowdown attribution and add blame columns to the matrix")
	check := flag.Bool("check", false, "exit non-zero unless 'none' escapes and every real tracker is escape-free")
	telemetryDir := flag.String("telemetry", "", "write harness telemetry (trace.json for Perfetto + counters.json) to this directory")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (e.g. localhost:6060)")
	listTrackers := flag.Bool("list-trackers", false, "list tracker ids and exit")
	flag.Parse()

	if *listTrackers {
		for _, id := range exp.KnownTrackers() {
			fmt.Println(id)
		}
		return
	}

	var p exp.Profile
	switch *profile {
	case "tiny":
		p = exp.Tiny()
	case "quick":
		p = exp.Quick()
	case "full":
		p = exp.Full()
	default:
		fatal(fmt.Errorf("unknown profile %q (tiny|quick|full)", *profile))
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	p.Engine = engine
	p.Seed = *seed
	p.Attribution = *attr

	w, err := workloads.ByName(*wname)
	if err != nil {
		fatal(err)
	}
	var trackerIDs []string
	for _, id := range strings.Split(*trackers, ",") {
		trackerIDs = append(trackerIDs, strings.TrimSpace(id))
	}
	if *trackers == "all" {
		trackerIDs = exp.KnownTrackers()
	}
	var attackSet []exp.SecurityAttack
	for _, name := range strings.Split(*attacks, ",") {
		a, err := exp.ParseAuditAttack(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		attackSet = append(attackSet, a)
	}
	var modeSet []rh.MitigationMode
	for _, name := range strings.Split(*modes, ",") {
		m, err := rh.ParseMode(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		modeSet = append(modeSet, m)
	}
	var nrhSet []uint32
	for _, s := range strings.Split(*nrhs, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
		if err != nil || v == 0 {
			fatal(fmt.Errorf("bad -nrh value %q", s))
		}
		nrhSet = append(nrhSet, uint32(v))
	}
	*jobs = harness.NormalizeJobs(*jobs)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	req := exp.SecurityRequest{
		Trackers:      trackerIDs,
		Attacks:       attackSet,
		Modes:         modeSet,
		NRHs:          nrhSet,
		Workload:      w,
		Profile:       p,
		CountInjected: *countInjected,
	}
	sweep, cells, err := req.Jobs()
	if err != nil {
		fatal(err)
	}

	cache, err := harness.NewCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	var tracer *telemetry.Tracer
	if *telemetryDir != "" {
		tracer = telemetry.NewTracer()
	}
	blameAgg := diag.NewBlameAgg()
	pool := harness.NewPool(harness.Options{
		OnResult: blameAgg.Observe,
		Workers:  *jobs,
		Cache:    cache,
		Tracer:   tracer,
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d simulations]", done, total)
		},
	})
	if *debugAddr != "" {
		blameAgg.Publish()
		dbg, err := diag.Serve(*debugAddr, pool.Stats)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/vars\n", dbg.Addr())
	}
	futs := make([]*harness.Future, len(sweep))
	for i, job := range sweep {
		futs[i] = pool.Submit(job)
	}

	rows := make([]secaudit.MatrixRow, len(cells))
	escapesByTracker := make(map[string]uint64)
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil {
			fmt.Fprintln(os.Stderr)
			fatal(fmt.Errorf("audit %s/%s: %w", cells[i].Tracker, cells[i].Attack, err))
		}
		rep := res.Audit
		if rep == nil {
			fmt.Fprintln(os.Stderr)
			fatal(fmt.Errorf("audit %s/%s: run carried no audit report (stale cache entry?)", cells[i].Tracker, cells[i].Attack))
		}
		c := cells[i]
		rows[i] = secaudit.MatrixRow{
			Tracker: c.Tracker, TrackerName: c.TrackerName,
			Mode: c.Mode.String(), NRH: c.NRH, Attack: c.Attack,
			Workload: c.Workload, Profile: p.Name,
			Secure: rep.Secure(), Escapes: rep.Escapes,
			EscapedRows: rep.EscapedRows, MaxCount: rep.MaxCount, Margin: rep.Margin,
			ACTs: rep.ACTs, InjectedACTs: rep.InjectedACTs,
			Mitigations: rep.Mitigations, Refreshes: rep.Refreshes,
			BulkResets: rep.BulkResets, Throttled: res.Tracker.Throttled,
		}
		if a := res.Attribution; a != nil {
			rows[i].Attr = true
			for _, core := range sim.BenignCores(len(a.Cores)) {
				m := a.Cores[core].Mem
				rows[i].BlameMitigation += m.Mitigation
				rows[i].BlameInject += m.Inject
				rows[i].BlameThrottle += m.Throttle
			}
		}
		escapesByTracker[c.Tracker] += rep.Escapes
	}
	if err := pool.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, "\r\033[K")
	if tracer != nil {
		if err := harness.WriteTelemetry(*telemetryDir, tracer, pool.Stats()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry written to %s\n", *telemetryDir)
	}

	for _, name := range []string{"audit-matrix.jsonl", "audit-matrix.csv"} {
		f, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(name, ".jsonl") {
			err = secaudit.WriteMatrixJSONL(f, rows)
		} else {
			err = secaudit.WriteMatrixCSV(f, rows)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}

	st := pool.Stats()
	fmt.Printf("conformance matrix: %d cells (%d unique runs, %d simulated, %d cache hits)\n",
		len(rows), st.Unique, st.Ran, st.CacheHits)
	for _, id := range trackerIDs {
		verdict := "secure (0 escapes)"
		if n := escapesByTracker[id]; n > 0 {
			verdict = fmt.Sprintf("INSECURE (%d escapes)", n)
		}
		fmt.Printf("  %-12s %s\n", id, verdict)
	}
	fmt.Printf("matrix written to %s\n", *outDir)

	if *check {
		failed := false
		for _, id := range trackerIDs {
			n := escapesByTracker[id]
			if id == "none" && n == 0 {
				fmt.Fprintln(os.Stderr, "check FAILED: insecure baseline 'none' showed no escapes — the oracle or the tailored attacks lost their teeth")
				failed = true
			}
			if id != "none" && n > 0 {
				fmt.Fprintf(os.Stderr, "check FAILED: tracker %q let %d escapes through\n", id, n)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("conformance check passed: baseline escapes, every tracker holds")
	}
}
