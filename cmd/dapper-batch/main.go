// Command dapper-batch runs an arbitrary tracker x workload x NRH sweep
// straight to JSONL/CSV, without going through a paper figure. It is
// the bulk front-end to internal/harness: every combination is one
// cached, parallel simulation.
//
// Usage:
//
//	dapper-batch -trackers dapper-h,hydra -workloads rep -nrh 125,500,2000
//	dapper-batch -trackers all -workloads 429.mcf -attack refresh -out sweep/
//	dapper-batch -trackers dapper-h -mode drfmsb -nrh 500 -cache .dapper-cache
//
// Selectors: -trackers is a comma list of ids (see -list-trackers) or
// "all"; -workloads is "rep", "all", or a comma list of workload names;
// -attack is an attack kind name (see internal/attack) with "none"
// meaning four benign copies.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"dapper/internal/attack"
	"dapper/internal/diag"
	"dapper/internal/dram"
	"dapper/internal/exp"
	"dapper/internal/harness"
	"dapper/internal/rh"
	"dapper/internal/sim"
	"dapper/internal/telemetry"
	"dapper/internal/workloads"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	trackers := flag.String("trackers", "dapper-h", "comma list of tracker ids, or 'all'")
	wsel := flag.String("workloads", "rep", "'rep', 'all', or comma list of workload names")
	nrhs := flag.String("nrh", "500", "comma list of RowHammer thresholds")
	attackName := flag.String("attack", "none", "companion attack kind ('none' = benign run)")
	modeName := flag.String("mode", "VRR-BR1", "mitigation mode (VRR-BR1|VRR-BR2|RFMsb|DRFMsb)")
	profile := flag.String("profile", "quick", "quick or full (windows, geometry, seed)")
	seed := flag.Uint64("seed", 0, "override the profile's workload/attack trace seed (0 = profile default)")
	engineName := flag.String("engine", "event", "simulation engine: event (time-skipping, default) or cycle (per-cycle reference)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers (<=0 = NumCPU)")
	batched := flag.Bool("batch", false, "advance all tracker configs sharing a trace stream in lockstep (sim.RunBatch): decode once, full runs only for the lead and diverging points; results stay byte-identical")
	cacheDir := flag.String("cache", "", "disk result-cache directory")
	outDir := flag.String("out", ".", "output directory for batch.jsonl + batch.csv")
	windowUS := flag.Float64("window-us", 0, "in-sim telemetry window in microseconds (0 = off); each result gains a windowed Series")
	attr := flag.Bool("attr", false, "collect slowdown attribution (CPI stacks + blame matrix) on every run")
	telemetryDir := flag.String("telemetry", "", "write harness telemetry (trace.json for Perfetto + counters.json) to this directory")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address (e.g. localhost:6060)")
	listTrackers := flag.Bool("list-trackers", false, "list tracker ids and exit")
	flag.Parse()

	if *listTrackers {
		for _, id := range exp.KnownTrackers() {
			fmt.Println(id)
		}
		return
	}

	p, err := exp.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	p.Engine = engine
	if *seed != 0 {
		p.Seed = *seed
	}
	if *windowUS < 0 {
		fatal(fmt.Errorf("-window-us must be non-negative (microseconds, 0 = off), got %g", *windowUS))
	}
	if *windowUS > 0 {
		p.TelemetryWindow = dram.US(*windowUS)
	}
	p.Attribution = *attr

	*jobs = harness.NormalizeJobs(*jobs)
	kind, err := attack.ParseKind(*attackName)
	if err != nil {
		fatal(err)
	}
	mode, err := rh.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}

	trackerIDs := strings.Split(*trackers, ",")
	if *trackers == "all" {
		trackerIDs = exp.KnownTrackers()
	}

	var ws []workloads.Workload
	for _, sel := range strings.Split(*wsel, ",") {
		got, err := exp.ResolveWorkloads(strings.TrimSpace(sel))
		if err != nil {
			fatal(err)
		}
		ws = append(ws, got...)
	}

	var thresholds []uint32
	for _, s := range strings.Split(*nrhs, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
		if err != nil {
			fatal(fmt.Errorf("bad -nrh value %q: %v", s, err))
		}
		thresholds = append(thresholds, uint32(v))
	}

	req := exp.BatchRequest{
		Trackers:  trackerIDs,
		Workloads: ws,
		NRHs:      thresholds,
		Attack:    kind,
		Mode:      mode,
		Profile:   p,
	}
	cache, err := harness.NewCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	sinks, err := harness.FileSinks(*outDir, "batch.jsonl", "batch.csv")
	if err != nil {
		fatal(err)
	}

	if *batched {
		runBatched(req, *jobs, cache, sinks, *outDir)
		return
	}

	batch, err := req.Jobs()
	if err != nil {
		fatal(err)
	}

	var tracer *telemetry.Tracer
	if *telemetryDir != "" {
		tracer = telemetry.NewTracer()
	}
	blameAgg := diag.NewBlameAgg()
	pool := harness.NewPool(harness.Options{
		OnResult: blameAgg.Observe,
		Workers:  *jobs,
		Cache:    cache,
		Sinks:    sinks,
		Tracer:   tracer,
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d simulations]", done, total)
		},
	})
	if *debugAddr != "" {
		blameAgg.Publish()
		dbg, err := diag.Serve(*debugAddr, pool.Stats)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/vars\n", dbg.Addr())
	}

	//dapper:wallclock sweep elapsed-time for the stderr summary line only
	start := time.Now()
	futures := make([]*harness.Future, len(batch))
	for i, job := range batch {
		futures[i] = pool.Submit(job)
	}
	failed := 0
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "\n%s: %v\n", f.Desc(), err)
			failed++
		}
	}
	if err := pool.Close(); err != nil {
		fatal(err)
	}
	st := pool.Stats()
	if tracer != nil {
		if err := harness.WriteTelemetry(*telemetryDir, tracer, st); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry written to %s (open trace.json at https://ui.perfetto.dev)\n", *telemetryDir)
	}
	fmt.Fprintln(os.Stderr)
	fmt.Printf("%d runs (%d simulated, %d cache hits, %d deduplicated) in %.1fs on %d workers\n",
		st.Submitted, st.Ran, st.CacheHits, st.Submitted-st.Unique,
		//dapper:wallclock elapsed seconds printed in the run summary, not written to any sink
		time.Since(start).Seconds(), *jobs)
	fmt.Printf("wrote %s and %s\n",
		filepath.Join(*outDir, "batch.jsonl"), filepath.Join(*outDir, "batch.csv"))
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d runs failed\n", failed)
		os.Exit(1)
	}
}

// runBatched executes the sweep through exp.BatchedSweep (-batch):
// specs sharing a trace stream are decoded once and advanced in
// lockstep, with automatic fallback to independent runs for points
// whose tracker perturbs the stream.
func runBatched(req exp.BatchRequest, jobs int, cache *harness.Cache, sinks []harness.Sink, outDir string) {
	blameAgg := diag.NewBlameAgg()
	//dapper:wallclock sweep elapsed-time for the stderr summary line only
	start := time.Now()
	_, st, err := exp.BatchedSweep(req, harness.Options{
		Workers:  jobs,
		Cache:    cache,
		Sinks:    sinks,
		OnResult: blameAgg.Observe,
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d points]", done, total)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d points in %d lockstep groups (%d replayed, %d full runs, %d cache hits) in %.1fs on %d workers\n",
		st.Points, st.Groups, st.Lockstep, st.FullRuns, st.CacheHits,
		//dapper:wallclock elapsed seconds printed in the run summary, not written to any sink
		time.Since(start).Seconds(), jobs)
	if len(st.Reasons) > 0 {
		reasons := make([]string, 0, len(st.Reasons))
		for r := range st.Reasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Printf("  %-22s %d\n", r, st.Reasons[r])
		}
	}
	fmt.Printf("wrote %s and %s\n",
		filepath.Join(outDir, "batch.jsonl"), filepath.Join(outDir, "batch.csv"))
}
