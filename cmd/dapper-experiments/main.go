// Command dapper-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	dapper-experiments -exp fig11            # one experiment, quick profile
//	dapper-experiments -exp all -profile full
//	dapper-experiments -list
//
// Experiment ids follow DESIGN.md §3 (fig1..fig17, tab1..tab4, sec-h).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dapper/internal/exp"
)

func main() {
	expID := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	profile := flag.String("profile", "quick", "quick or full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range exp.Order() {
			fmt.Println(id)
		}
		return
	}

	var p exp.Profile
	switch *profile {
	case "quick":
		p = exp.Quick()
	case "full":
		p = exp.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (quick|full)\n", *profile)
		os.Exit(2)
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = exp.Order()
	}
	fmt.Printf("profile: %s (%d workloads, sweep %v)\n\n", p.Name, len(p.Workloads), p.NRHSweep)
	for _, id := range ids {
		g, err := exp.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		tb, err := g(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		tb.AddNote("generated in %.1fs under the %s profile", time.Since(start).Seconds(), p.Name)
		tb.Fprint(os.Stdout)
	}
}
