// Command dapper-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	dapper-experiments -exp fig11                  # one experiment, quick profile
//	dapper-experiments -exp all -profile full -jobs 16
//	dapper-experiments -exp fig11 -cache .dapper-cache   # rerun = zero sims
//	dapper-experiments -exp all -out results/            # JSONL + CSV records
//	dapper-experiments -list
//
// Experiment ids follow DESIGN.md §3 (fig1..fig17, tab1..tab4, sec-h).
// Simulations fan out over -jobs workers via internal/harness; table
// output is byte-identical for any worker count. Progress and timing go
// to stderr so stdout stays clean for the tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"dapper/internal/exp"
	"dapper/internal/harness"
	"dapper/internal/sim"
)

func main() {
	expID := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	profile := flag.String("profile", "quick", "quick or full")
	seed := flag.Uint64("seed", 0, "override the profile's workload/attack trace seed (0 = profile default)")
	engineName := flag.String("engine", "event", "simulation engine: event (time-skipping, default) or cycle (per-cycle reference)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers (<=0 = NumCPU)")
	cacheDir := flag.String("cache", "", "disk result-cache directory (reruns hit the cache)")
	outDir := flag.String("out", "", "directory for run records (results.jsonl + results.csv)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range exp.Order() {
			fmt.Println(id)
		}
		return
	}

	var p exp.Profile
	switch *profile {
	case "quick":
		p = exp.Quick()
	case "full":
		p = exp.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (quick|full)\n", *profile)
		os.Exit(2)
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p.Engine = engine
	if *seed != 0 {
		p.Seed = *seed
	}

	*jobs = harness.NormalizeJobs(*jobs)
	cache, err := harness.NewCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var sinks []harness.Sink
	if *outDir != "" {
		sinks, err = harness.FileSinks(*outDir, "results.jsonl", "results.csv")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	pool := harness.NewPool(harness.Options{
		Workers: *jobs,
		Cache:   cache,
		Sinks:   sinks,
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d simulations]", done, total)
			if done == total {
				fmt.Fprint(os.Stderr, " ")
			}
		},
	})

	ids := []string{*expID}
	if *expID == "all" {
		ids = exp.Order()
	}
	fmt.Printf("profile: %s (%d workloads, sweep %v)\n\n", p.Name, len(p.Workloads), p.NRHSweep)
	for _, id := range ids {
		//dapper:wallclock per-figure elapsed time for the stderr progress line only
		start := time.Now()
		tb, err := exp.Generate(id, p, pool)
		if err != nil {
			fmt.Fprintf(os.Stderr, "\n%s failed: %v\n", id, err)
			// Flush completed records to the sinks before dying so a
			// late failure doesn't discard the finished simulations.
			pool.Close()
			os.Exit(1)
		}
		//dapper:wallclock progress display on stderr, byte-exact tables go to stdout
		fmt.Fprintf(os.Stderr, "\r%s: %.1fs\n", id, time.Since(start).Seconds())
		tb.Fprint(os.Stdout)
	}
	if err := pool.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sink error: %v\n", err)
		os.Exit(1)
	}
	st := pool.Stats()
	fmt.Fprintf(os.Stderr, "simulations: %d ran, %d cache hits, %d deduplicated (of %d requests) on %d workers\n",
		st.Ran, st.CacheHits, st.Submitted-st.Unique, st.Submitted, *jobs)
	if *outDir != "" {
		fmt.Fprintf(os.Stderr, "records: %s\n", filepath.Join(*outDir, "results.{jsonl,csv}"))
	}
}
