// Command dapper-serve is the sweep service: a daemon exposing an
// HTTP/JSON job API over a persistent content-addressed result store.
// Clients submit tracker x workload x NRH sweep specs, poll job
// status, and stream completed records as JSONL — the same
// harness.Record lines, in the same spec order, that dapper-batch's
// pool path writes. The store is a shared cache directory: several
// daemons (or a daemon and local dapper-batch runs) pointed at one
// directory split the work via claim files instead of duplicating it.
//
// Daemon:
//
//	dapper-serve -addr localhost:8080 -store .dapper-store
//	dapper-serve -addr localhost:0 -addr-file serve.addr   # ephemeral port
//
// Client:
//
//	dapper-serve -client -server http://localhost:8080 \
//	    -trackers none,dapper-h -workloads 429.mcf -nrh 500 \
//	    -profile tiny -out results/
//
// API:
//
//	POST /v1/jobs              submit a sweep spec (JSON), 202/200/429
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/records completed records as JSONL (?wait=1 blocks)
//	GET  /v1/store/stats       store + queue counters
//	GET  /healthz              liveness probe
//	GET  /debug/vars,/debug/pprof/  the shared diag debug mux
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dapper/internal/exp"
	"dapper/internal/harness"
	"dapper/internal/serve"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	// Daemon flags.
	addr := flag.String("addr", "localhost:8080", "listen address (port 0 = ephemeral; see -addr-file)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
	storeDir := flag.String("store", ".dapper-store", "result store directory (shared across daemons and dapper-batch -cache)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulation workers (<=0 = NumCPU)")
	shards := flag.Int("shards", 0, "work-queue shards (0 = workers)")
	memEntries := flag.Int("mem-entries", 4096, "in-memory result cache bound (0 = unbounded)")
	diskMB := flag.Int64("disk-mb", 0, "disk store size bound in MiB, LRU-evicted (0 = unbounded)")
	rate := flag.Float64("rate", 1, "job submissions per second per client IP (0 = unlimited)")
	burst := flag.Int("burst", 10, "submission burst per client IP")
	maxQueue := flag.Int("max-queue", 4096, "queue depth bound; sweeps beyond it get 429 + Retry-After")
	claimTTL := flag.Duration("claim-ttl", serve.DefaultClaimTTL, "break another process's claim after this long (crash recovery)")

	// Client flags.
	client := flag.Bool("client", false, "run as a client: submit a sweep, wait, download records")
	server := flag.String("server", "http://localhost:8080", "daemon base URL (client mode)")
	trackers := flag.String("trackers", "dapper-h", "comma list of tracker ids, or 'all' (client mode)")
	wsel := flag.String("workloads", "rep", "'rep', 'all', or comma list of workload names (client mode)")
	nrhs := flag.String("nrh", "500", "comma list of RowHammer thresholds (client mode)")
	attackName := flag.String("attack", "none", "companion attack kind (client mode)")
	modeName := flag.String("mode", "VRR-BR1", "mitigation mode (client mode)")
	profile := flag.String("profile", "quick", "tiny, quick or full (client mode)")
	seed := flag.Uint64("seed", 0, "trace seed override (client mode)")
	engineName := flag.String("engine", "event", "simulation engine (client mode)")
	windowUS := flag.Float64("window-us", 0, "telemetry window in microseconds (client mode)")
	attr := flag.Bool("attr", false, "collect slowdown attribution (client mode)")
	outDir := flag.String("out", ".", "output directory for records.jsonl (client mode)")
	timeout := flag.Duration("timeout", 30*time.Minute, "overall client deadline")
	flag.Parse()

	if *client {
		spec, err := specFromFlags(*trackers, *wsel, *nrhs, *attackName, *modeName,
			*profile, *seed, *engineName, *windowUS, *attr)
		if err != nil {
			fatal(err)
		}
		if err := runClient(*server, spec, *outDir, *timeout); err != nil {
			fatal(err)
		}
		return
	}
	if err := runDaemon(daemonConfig{
		addr:       *addr,
		addrFile:   *addrFile,
		storeDir:   *storeDir,
		workers:    harness.NormalizeJobs(*jobs),
		shards:     *shards,
		memEntries: *memEntries,
		diskBytes:  *diskMB << 20,
		rate:       *rate,
		burst:      *burst,
		maxQueue:   *maxQueue,
		claimTTL:   *claimTTL,
	}); err != nil {
		fatal(err)
	}
}

type daemonConfig struct {
	addr       string
	addrFile   string
	storeDir   string
	workers    int
	shards     int
	memEntries int
	diskBytes  int64
	rate       float64
	burst      int
	maxQueue   int
	claimTTL   time.Duration
}

// runDaemon stands the service up and runs until SIGINT/SIGTERM, then
// stops gracefully: HTTP first (no new work), queue drain second,
// store checkpoint last.
func runDaemon(cfg daemonConfig) error {
	store, err := serve.NewStore(serve.StoreOptions{
		Dir:           cfg.storeDir,
		MaxMemEntries: cfg.memEntries,
		MaxDiskBytes:  cfg.diskBytes,
		ClaimTTL:      cfg.claimTTL,
	})
	if err != nil {
		return err
	}
	queue := serve.NewQueue(serve.QueueOptions{
		Store:    store,
		Workers:  cfg.workers,
		Shards:   cfg.shards,
		MaxQueue: cfg.maxQueue,
		Retry:    harness.RetryPolicy{Attempts: 2, Backoff: 100 * time.Millisecond},
	})
	api := serve.NewAPI(serve.APIOptions{
		Store:    store,
		Queue:    queue,
		Registry: serve.NewRegistry(queue),
		Limiter:  serve.NewLimiter(cfg.rate, cfg.burst),
		MaxQueue: cfg.maxQueue,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("dapper-serve: listen %s: %w", cfg.addr, err)
	}
	bound := ln.Addr().String()
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	srv := &http.Server{Handler: api.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dapper-serve: listening on http://%s (store %s, %d workers)\n",
		bound, cfg.storeDir, cfg.workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "dapper-serve: %v, stopping\n", sig)
	case err := <-errc:
		queue.Stop(context.Background()) //nolint:errcheck
		store.Close()                    //nolint:errcheck
		return fmt.Errorf("dapper-serve: %w", err)
	}

	//dapper:wallclock bounded graceful-stop deadlines; shutdown only
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	srv.Shutdown(httpCtx) //nolint:errcheck // stopping anyway
	//dapper:wallclock bounded graceful-stop deadlines; shutdown only
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelDrain()
	if err := queue.Stop(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dapper-serve: queue drain: %v\n", err)
	}
	if err := store.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "dapper-serve: stopped")
	return nil
}

// specFromFlags assembles the sweep spec a client submits, expanding
// 'all' trackers locally so the wire spec is explicit.
func specFromFlags(trackers, wsel, nrhs, attackName, modeName, profile string,
	seed uint64, engine string, windowUS float64, attr bool) (exp.SweepSpec, error) {
	ids := strings.Split(trackers, ",")
	if trackers == "all" {
		ids = exp.KnownTrackers()
	}
	var thresholds []uint32
	for _, s := range strings.Split(nrhs, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
		if err != nil {
			return exp.SweepSpec{}, fmt.Errorf("bad -nrh value %q: %v", s, err)
		}
		thresholds = append(thresholds, uint32(v))
	}
	var sels []string
	for _, s := range strings.Split(wsel, ",") {
		sels = append(sels, strings.TrimSpace(s))
	}
	spec := exp.SweepSpec{
		Trackers:    ids,
		Workloads:   sels,
		NRHs:        thresholds,
		Attack:      attackName,
		Mode:        modeName,
		Profile:     profile,
		Seed:        seed,
		Engine:      engine,
		WindowUS:    windowUS,
		Attribution: attr,
	}
	// Validate locally for a fast, readable error instead of a 400.
	if _, err := spec.Normalize(); err != nil {
		return exp.SweepSpec{}, err
	}
	return spec, nil
}

// runClient submits the spec, honoring 429 Retry-After, then streams
// the job's records into <out>/records.jsonl and exits non-zero if any
// sweep point errored.
//
//dapper:wallclock client-side deadline and Retry-After pacing; server results are untouched
func runClient(server string, spec exp.SweepSpec, outDir string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	status, err := submitWithRetry(ctx, server, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s: %d points\n", status.ID, status.Total)

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	outPath := filepath.Join(outDir, "records.jsonl")
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		server+"/v1/jobs/"+status.ID+"/records?wait=1", nil)
	if err != nil {
		out.Close()
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		out.Close()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out.Close()
		return fmt.Errorf("records: %s", resp.Status)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		if _, err := out.Write(append(sc.Bytes(), '\n')); err != nil {
			out.Close()
			return err
		}
		lines++
		fmt.Fprintf(os.Stderr, "\r[%d/%d records]", lines, status.Total)
	}
	fmt.Fprintln(os.Stderr)
	if err := sc.Err(); err != nil {
		out.Close()
		return fmt.Errorf("records stream: %w", err)
	}
	if err := out.Close(); err != nil {
		return err
	}

	final, err := getStatus(ctx, server, status.ID)
	if err != nil {
		return err
	}
	fmt.Printf("job %s: %d/%d points, %d cache hits, %d errors; wrote %s\n",
		final.ID, final.Completed, final.Total, final.CacheHits, final.Errors, outPath)
	if final.Errors > 0 {
		return fmt.Errorf("%d sweep points failed (their records are omitted)", final.Errors)
	}
	return nil
}

// submitWithRetry POSTs the spec, sleeping out 429 Retry-After
// responses until the deadline.
//
//dapper:wallclock sleeps between rate-limited submissions; pacing only
func submitWithRetry(ctx context.Context, server string, spec exp.SweepSpec) (serve.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobStatus{}, err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			server+"/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			return serve.JobStatus{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return serve.JobStatus{}, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			var status serve.JobStatus
			err := json.NewDecoder(resp.Body).Decode(&status)
			resp.Body.Close()
			return status, err
		case http.StatusTooManyRequests:
			wait := 2 * time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "server busy; retrying in %s\n", wait)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return serve.JobStatus{}, ctx.Err()
			}
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return serve.JobStatus{}, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
	}
}

func getStatus(ctx context.Context, server, id string) (serve.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, server+"/v1/jobs/"+id, nil)
	if err != nil {
		return serve.JobStatus{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.JobStatus{}, fmt.Errorf("status: %s", resp.Status)
	}
	var status serve.JobStatus
	return status, json.NewDecoder(resp.Body).Decode(&status)
}
