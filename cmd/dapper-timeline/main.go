// Command dapper-timeline runs one windowed simulation and renders its
// cycle-windowed time-series (per-core IPC and stall fraction,
// per-channel demand vs injected ACT rate, mitigation rate by kind,
// queue occupancy, tracker table occupancy) to JSONL and CSV — the data
// behind tracker-vs-attack dynamics figures.
//
// Usage:
//
//	dapper-timeline -workload 429.mcf -tracker dapper-h -attack refresh -window 10
//	dapper-timeline -tracker hydra -attack hydra-conflict -out dyn/ -check
//	dapper-timeline -tracker none -attack none -format csv
//
// -check replays the identical configuration on the other engine and
// fails unless the two series are byte-identical, re-verifies the
// series invariants (monotone window grid, stall bounds, per-window
// sums equal to grand totals), and gates ACT/mitigation conservation
// against the run's final DRAM counters: the exact grand-total equality
// runs inside sim.Run on every windowed run, and here the whole-run
// totals must additionally contain the measure-window deltas.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dapper/internal/attack"
	"dapper/internal/dram"
	"dapper/internal/exp"
	"dapper/internal/rh"
	"dapper/internal/sim"
	"dapper/internal/telemetry"
	"dapper/internal/workloads"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func runOnce(engine sim.Engine, geo dram.Geometry, factory sim.TrackerFactory,
	w workloads.Workload, kind attack.Kind, nrh uint32,
	warmup, measure, window dram.Cycle, seed uint64) (sim.Result, error) {
	traces := sim.BenignTraces(w, 3, geo, seed)
	if kind == attack.None {
		traces = sim.BenignTraces(w, 4, geo, seed)
	} else {
		traces = append(traces, attack.MustTrace(attack.Config{
			Geometry: geo, NRH: nrh, Kind: kind, Seed: seed,
		}))
	}
	return sim.Run(sim.Config{
		Geometry:        geo,
		Traces:          traces,
		Tracker:         factory,
		Warmup:          warmup,
		Measure:         measure,
		Engine:          engine,
		TelemetryWindow: window,
	})
}

func main() {
	wl := flag.String("workload", "429.mcf", "benign workload name")
	tr := flag.String("tracker", "dapper-h", "tracker id (see dapper-batch -list-trackers), or 'none'")
	atk := flag.String("attack", "refresh", "attack on the 4th core ('none' = four benign copies)")
	nrh := flag.Uint("nrh", 500, "RowHammer threshold")
	windowUS := flag.Float64("window", 10, "telemetry window in microseconds")
	measureUS := flag.Float64("measure", 400, "measurement window in microseconds")
	warmupUS := flag.Float64("warmup", 100, "warmup window in microseconds")
	rowsPerBank := flag.Uint("rows-per-bank", 0, "override rows per bank (0 = full 64K)")
	seed := flag.Uint64("seed", 1, "workload + attack trace seed")
	engineName := flag.String("engine", "event", "simulation engine: event or cycle")
	outDir := flag.String("out", ".", "output directory for timeline.{jsonl,csv}")
	format := flag.String("format", "both", "output format: jsonl, csv or both")
	check := flag.Bool("check", false, "verify series invariants and cross-engine byte equality; non-zero exit on failure")
	flag.Parse()

	if *windowUS <= 0 {
		fatal(fmt.Errorf("-window must be positive (microseconds)"))
	}
	switch *format {
	case "jsonl", "csv", "both":
	default:
		fatal(fmt.Errorf("unknown -format %q (jsonl|csv|both)", *format))
	}
	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}
	kind, err := attack.ParseKind(*atk)
	if err != nil {
		fatal(err)
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	geo := dram.Baseline()
	if *rowsPerBank != 0 {
		geo = dram.Scaled(uint32(*rowsPerBank))
	}
	factory, err := exp.TrackerFactory(*tr, geo, uint32(*nrh), rh.VRR1)
	if err != nil {
		fatal(err)
	}
	warmup, measure, window := dram.US(*warmupUS), dram.US(*measureUS), dram.US(*windowUS)

	res, err := runOnce(engine, geo, factory, w, kind, uint32(*nrh), warmup, measure, window, *seed)
	if err != nil {
		fatal(err)
	}
	s := res.Series
	if s == nil {
		fatal(fmt.Errorf("run produced no series (TelemetryWindow not plumbed?)"))
	}

	if *check {
		// Validate re-checks the window grid and the per-window sums
		// against the series' own grand totals; the exact grand-total-vs-
		// DRAM-counter conservation gate already ran inside sim.Run (it
		// fails the run on any mismatch). What remains checkable here is
		// the whole-run ⊇ measure-window containment: the series covers
		// warmup + measure, so its totals can never undercount the
		// measure-only deltas in res.Counters.
		if err := s.Validate(); err != nil {
			fatal(fmt.Errorf("series invariants: %w", err))
		}
		if s.Cycles != s.Warmup+measure {
			fatal(fmt.Errorf("series span %d != warmup %d + measure %d", s.Cycles, s.Warmup, measure))
		}
		acts := s.Totals.DemandACT + s.Totals.InjACT
		if acts < res.Counters.ACT {
			fatal(fmt.Errorf("ACT conservation: whole-run series %d (demand %d + injected %d) < measure-window counter %d",
				acts, s.Totals.DemandACT, s.Totals.InjACT, res.Counters.ACT))
		}
		if s.Totals.VRR < res.Counters.VRR || s.Totals.REF < res.Counters.REF {
			fatal(fmt.Errorf("mitigation conservation: series VRR=%d REF=%d < measure-window VRR=%d REF=%d",
				s.Totals.VRR, s.Totals.REF, res.Counters.VRR, res.Counters.REF))
		}
		other := sim.EngineCycle
		if engine.OrDefault() == sim.EngineCycle {
			other = sim.EngineEvent
		}
		res2, err := runOnce(other, geo, factory, w, kind, uint32(*nrh), warmup, measure, window, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s replay: %w", other, err))
		}
		a, err := json.Marshal(s)
		if err != nil {
			fatal(err)
		}
		b, err := json.Marshal(res2.Series)
		if err != nil {
			fatal(err)
		}
		if !bytes.Equal(a, b) {
			fatal(fmt.Errorf("engines diverge: %s and %s series are not byte-identical", engine.OrDefault(), other))
		}
		fmt.Printf("check passed: %d windows, invariants hold, ACT conserved (%d), %s == %s byte-identical\n",
			s.NumWindows(), acts, engine.OrDefault(), other)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *format != "csv" {
		write("timeline.jsonl", func(f *os.File) error { return telemetry.WriteSeriesJSONL(f, s) })
	}
	if *format != "jsonl" {
		write("timeline.csv", func(f *os.File) error { return telemetry.WriteSeriesCSV(f, s) })
	}
	fmt.Printf("workload=%s tracker=%s attack=%s NRH=%d: %d windows of %dus over %d cycles (VRR=%d RFMsb=%d DRFMsb=%d bulk=%d)\n",
		w.Name, res.TrackerNames[0], kind, *nrh, s.NumWindows(), int64(*windowUS),
		s.Cycles, s.Totals.VRR, s.Totals.RFMsb, s.Totals.DRFMsb, s.Totals.Bulk)
}
